//! Approximated order-k Voronoi diagram indexed by an aggregated binary tree
//! ("V-tree", Section III-C of the paper), plus the best-first / upper-bound
//! pruned search for the slot with the maximum heuristic value.
//!
//! The tree covers the task timeline `[0, m)`.  Each node represents a time
//! segment `[l, r]` and stores the auxiliary quadruple of the paper —
//! `⟨k-set, knn(l), knn(r), q′⟩` — materialised here as:
//!
//! * the k-NN results of the two end slots (and their k-th NN distances
//!   `kmax(l)`, `kmax(r)`, from which the node's *influence range*
//!   `[l − kmax(l), r + kmax(r)]` is derived);
//! * the aggregated partial quality `q′` of all slots in the segment;
//! * additional aggregates used by the pruned search: the summed *potential*
//!   (the largest possible partial-quality improvement of each unexecuted
//!   slot under a single additional execution, per Eq. 6 of the paper), the
//!   minimum assignment cost and the minimum current partial quality among
//!   unexecuted slots.
//!
//! Splitting stops when a segment is entirely contained in one Voronoi cell
//! (`knn(l) = knn(r)`, Condition 1 / Lemma 8) or when the segment length
//! drops below the threshold `ts` (Condition 2), which bounds the tree depth
//! by `⌈log2(m/ts)⌉` and acts as the approximation knob.
//!
//! Two operations drive the `Approx*` algorithm:
//!
//! * [`VTree::gain`] — the exact quality increment of tentatively executing a
//!   slot, computed by reusing the stored `q′` of every node whose influence
//!   range excludes the tentative slot (the "locality of k-NN searching");
//! * [`VTree::best_slot`] — best-first search over the tree with an
//!   admissible upper bound on each node's heuristic value (quality increment
//!   per unit cost), pruning nodes that cannot beat the best exact value
//!   found so far.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tcsc_core::quality::{ExecutedSlot, QualityEvaluator};
use tcsc_core::SlotIndex;

use crate::voronoi::site_knn_set;

/// Configuration of the tree index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VTreeConfig {
    /// Segment-length threshold `ts`: nodes whose segment is not longer than
    /// this are never split (paper default: 4).
    pub ts: usize,
}

impl VTreeConfig {
    /// Creates a configuration; `ts` must be at least 1.
    pub fn new(ts: usize) -> Self {
        assert!(ts >= 1, "ts must be at least 1");
        Self { ts }
    }
}

impl Default for VTreeConfig {
    fn default() -> Self {
        Self { ts: 4 }
    }
}

/// Statistics of one [`VTree::best_slot`] search, used for the pruning-ratio
/// analysis of Fig. 8(d).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchStats {
    /// Number of unexecuted slots whose exact heuristic value was computed.
    pub evaluated_slots: usize,
    /// Number of unexecuted candidate slots in total.
    pub candidate_slots: usize,
    /// Number of tree nodes popped from the search heap.
    pub visited_nodes: usize,
    /// Number of tree nodes pruned by the upper bound.
    pub pruned_nodes: usize,
}

impl SearchStats {
    /// Fraction of candidate slots that were *not* exactly evaluated.
    pub fn pruning_ratio(&self) -> f64 {
        if self.candidate_slots == 0 {
            0.0
        } else {
            1.0 - self.evaluated_slots as f64 / self.candidate_slots as f64
        }
    }

    /// Accumulates another search's statistics into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.evaluated_slots += other.evaluated_slots;
        self.candidate_slots += other.candidate_slots;
        self.visited_nodes += other.visited_nodes;
        self.pruned_nodes += other.pruned_nodes;
    }
}

/// The best slot found by [`VTree::best_slot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestSlot {
    /// The slot with the maximum heuristic value.
    pub slot: SlotIndex,
    /// Its exact quality increment.
    pub gain: f64,
    /// Its assignment cost.
    pub cost: f64,
    /// The heuristic value `gain / cost`.
    pub heuristic: f64,
}

#[derive(Debug, Clone)]
struct Node {
    start: usize,
    end: usize,
    left: Option<usize>,
    right: Option<usize>,
    /// Aggregated partial quality `q′` of the segment.
    quality: f64,
    /// Aggregated potential (max possible single-insertion improvement) of
    /// unexecuted slots in the segment.
    potential: f64,
    /// Minimum partial quality among unexecuted, affordable slots.
    min_unexec_pq: f64,
    /// Minimum assignment cost among unexecuted, affordable slots.
    min_cost: f64,
    /// Maximum k-th NN distance among unexecuted slots of the segment.
    max_kth_dist: usize,
    /// Number of unexecuted slots with a finite cost in the segment.
    candidates: usize,
    /// k-NN site distances of the left end slot (distance to its k-th NN, or
    /// `m` when fewer than k slots are executed).
    kmax_l: usize,
    /// Same for the right end slot.
    kmax_r: usize,
    /// k-NN site set of the left / right end slots (for the split condition).
    knn_l: Vec<SlotIndex>,
    knn_r: Vec<SlotIndex>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.left.is_none()
    }

    /// Influence range: a tentative execution outside this range cannot
    /// change the k-NN interpolation of any slot in the segment.
    fn influence_contains(&self, slot: SlotIndex, m: usize) -> bool {
        let lo = self.start.saturating_sub(self.kmax_l);
        let hi = (self.end + self.kmax_r).min(m.saturating_sub(1));
        (lo..=hi).contains(&slot)
    }
}

/// Max-heap entry for the best-first search.
struct HeapEntry {
    bound: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// The aggregated tree index over a task's timeline.
///
/// The tree holds per-slot assignment costs (`None` for slots with no
/// available worker) so that heuristic values `Δq / c` can be bounded and
/// evaluated without consulting the worker index again.
#[derive(Debug, Clone)]
pub struct VTree {
    config: VTreeConfig,
    num_slots: usize,
    k: usize,
    costs: Vec<Option<f64>>,
    nodes: Vec<Node>,
    root: usize,
    /// Milliseconds-free construction statistics: number of slots whose
    /// aggregates were recomputed since construction (for the Fig. 8(c)
    /// breakdown).
    recomputed_slots: usize,
}

impl VTree {
    /// Builds the tree for the current state of `evaluator`.
    ///
    /// `costs[j]` is the assignment cost of slot `j` (distance to its nearest
    /// available worker), or `None` when the slot cannot be executed.
    pub fn build(
        evaluator: &QualityEvaluator,
        costs: Vec<Option<f64>>,
        config: VTreeConfig,
    ) -> Self {
        let m = evaluator.num_slots();
        assert_eq!(costs.len(), m, "one cost entry per slot is required");
        let mut tree = Self {
            config,
            num_slots: m,
            k: evaluator.k(),
            costs,
            nodes: Vec::with_capacity(2 * m / config.ts.max(1) + 4),
            root: 0,
            recomputed_slots: 0,
        };
        tree.root = tree.build_node(evaluator, 0, m - 1);
        tree
    }

    /// The configured split threshold `ts`.
    pub fn config(&self) -> VTreeConfig {
        self.config
    }

    /// Number of nodes currently in the tree (including rebuilt garbage-free
    /// nodes only).
    pub fn node_count(&self) -> usize {
        self.count_nodes(self.root)
    }

    fn count_nodes(&self, idx: usize) -> usize {
        let node = &self.nodes[idx];
        1 + node.left.map_or(0, |l| self.count_nodes(l))
            + node.right.map_or(0, |r| self.count_nodes(r))
    }

    /// Maximum depth of the tree.
    pub fn depth(&self) -> usize {
        self.depth_of(self.root)
    }

    fn depth_of(&self, idx: usize) -> usize {
        let node = &self.nodes[idx];
        1 + node
            .left
            .map_or(0, |l| self.depth_of(l))
            .max(node.right.map_or(0, |r| self.depth_of(r)))
    }

    /// Total number of per-slot aggregate recomputations performed so far
    /// (construction + updates); a proxy for the index maintenance cost.
    pub fn recomputed_slots(&self) -> usize {
        self.recomputed_slots
    }

    /// Aggregated quality `q(τ)` stored at the root.
    pub fn total_quality(&self) -> f64 {
        self.nodes[self.root].quality
    }

    /// The assignment cost currently recorded for a slot.
    pub fn cost_of(&self, slot: SlotIndex) -> Option<f64> {
        self.costs[slot]
    }

    /// Updates the assignment cost of a slot (used when multi-task conflicts
    /// force a task to fall back to its 2nd, 3rd, ... nearest worker) and
    /// refreshes the cost aggregates along the affected path.
    pub fn update_cost(
        &mut self,
        evaluator: &QualityEvaluator,
        slot: SlotIndex,
        cost: Option<f64>,
    ) {
        self.costs[slot] = cost;
        self.refresh_for_slot(evaluator, self.root, slot);
    }

    fn refresh_for_slot(&mut self, evaluator: &QualityEvaluator, idx: usize, slot: SlotIndex) {
        let (start, end, left, right, is_leaf) = {
            let n = &self.nodes[idx];
            (n.start, n.end, n.left, n.right, n.is_leaf())
        };
        if slot < start || slot > end {
            return;
        }
        if is_leaf {
            self.recompute_leaf(evaluator, idx);
            return;
        }
        if let Some(l) = left {
            self.refresh_for_slot(evaluator, l, slot);
        }
        if let Some(r) = right {
            self.refresh_for_slot(evaluator, r, slot);
        }
        self.recompute_inner(idx);
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn build_node(&mut self, evaluator: &QualityEvaluator, start: usize, end: usize) -> usize {
        let knn_l = site_knn_set(evaluator, start, self.k);
        let knn_r = site_knn_set(evaluator, end, self.k);
        let kmax_l = Self::kth_distance(&knn_l, start, self.k, self.num_slots);
        let kmax_r = Self::kth_distance(&knn_r, end, self.k, self.num_slots);
        let len = end - start + 1;
        let stop = len <= self.config.ts || knn_l == knn_r;

        let idx = self.nodes.len();
        self.nodes.push(Node {
            start,
            end,
            left: None,
            right: None,
            quality: 0.0,
            potential: 0.0,
            min_unexec_pq: f64::INFINITY,
            min_cost: f64::INFINITY,
            max_kth_dist: 0,
            candidates: 0,
            kmax_l,
            kmax_r,
            knn_l,
            knn_r,
        });

        if stop {
            self.recompute_leaf(evaluator, idx);
        } else {
            let mid = start + (end - start) / 2;
            let left = self.build_node(evaluator, start, mid);
            let right = self.build_node(evaluator, mid + 1, end);
            self.nodes[idx].left = Some(left);
            self.nodes[idx].right = Some(right);
            self.recompute_inner(idx);
        }
        idx
    }

    /// Distance from `slot` to its k-th nearest executed site, or `m` when
    /// fewer than `k` sites exist.
    fn kth_distance(knn: &[SlotIndex], slot: SlotIndex, k: usize, m: usize) -> usize {
        if knn.len() < k {
            m
        } else {
            knn.iter().map(|&e| e.abs_diff(slot)).max().unwrap_or(m)
        }
    }

    fn recompute_leaf(&mut self, evaluator: &QualityEvaluator, idx: usize) {
        let (start, end) = {
            let n = &self.nodes[idx];
            (n.start, n.end)
        };
        let m = self.num_slots as f64;
        let max_pq_after_exec = Self::entropy_term(1.0 / m);
        let mut quality = 0.0;
        let mut potential = 0.0;
        let mut min_unexec_pq = f64::INFINITY;
        let mut min_cost = f64::INFINITY;
        let mut max_kth_dist = 0usize;
        let mut candidates = 0usize;

        for slot in start..=end {
            self.recomputed_slots += 1;
            let pq = evaluator.partial_quality(slot);
            quality += pq;
            if evaluator.is_executed(slot) {
                continue;
            }
            // Potential improvement of this slot under one more execution
            // elsewhere (Eq. 6): its k-th NN distance can drop to 1 at best.
            let neighbors = evaluator.knn(slot);
            let kth_dist = neighbors.last().map_or(self.num_slots, |n| n.distance);
            max_kth_dist = max_kth_dist.max(kth_dist);
            let dist_sum: f64 = neighbors.iter().map(|n| n.distance as f64).sum();
            let k = self.k as f64;
            // Lower bound on the error ratio after one extra execution: the
            // k-th neighbour is replaced by one at distance 1.
            let rho_lb = ((dist_sum - kth_dist as f64 + 1.0) / (k * m)).max(0.0);
            let p_ub = ((1.0 - rho_lb) / m).max(0.0);
            let pq_ub = Self::entropy_term(p_ub);
            potential += (pq_ub - pq).max(0.0);

            if let Some(cost) = self.costs[slot] {
                candidates += 1;
                min_cost = min_cost.min(cost);
                min_unexec_pq = min_unexec_pq.min(pq);
            }
        }
        let _ = max_pq_after_exec;
        let node = &mut self.nodes[idx];
        node.quality = quality;
        node.potential = potential;
        node.min_unexec_pq = min_unexec_pq;
        node.min_cost = min_cost;
        node.max_kth_dist = max_kth_dist;
        node.candidates = candidates;
    }

    fn recompute_inner(&mut self, idx: usize) {
        let (l, r) = {
            let n = &self.nodes[idx];
            (n.left.unwrap(), n.right.unwrap())
        };
        let (lq, lp, lmin_pq, lmin_c, lkd, lc) = {
            let n = &self.nodes[l];
            (
                n.quality,
                n.potential,
                n.min_unexec_pq,
                n.min_cost,
                n.max_kth_dist,
                n.candidates,
            )
        };
        let (rq, rp, rmin_pq, rmin_c, rkd, rc) = {
            let n = &self.nodes[r];
            (
                n.quality,
                n.potential,
                n.min_unexec_pq,
                n.min_cost,
                n.max_kth_dist,
                n.candidates,
            )
        };
        let node = &mut self.nodes[idx];
        node.quality = lq + rq;
        node.potential = lp + rp;
        node.min_unexec_pq = lmin_pq.min(rmin_pq);
        node.min_cost = lmin_c.min(rmin_c);
        node.max_kth_dist = lkd.max(rkd);
        node.candidates = lc + rc;
    }

    #[inline]
    fn entropy_term(p: f64) -> f64 {
        if p <= 0.0 {
            0.0
        } else {
            -p * p.log2()
        }
    }

    // ------------------------------------------------------------------
    // Exact gain with locality
    // ------------------------------------------------------------------

    /// Exact quality increment of tentatively executing `slot` (with a fully
    /// reliable worker), reusing stored aggregates of unaffected nodes.
    pub fn gain(&self, evaluator: &QualityEvaluator, slot: SlotIndex) -> f64 {
        if evaluator.is_executed(slot) {
            return 0.0;
        }
        let extra = ExecutedSlot {
            slot,
            reliability: 1.0,
        };
        let new_total = self.quality_with_extra(evaluator, self.root, extra);
        new_total - self.nodes[self.root].quality
    }

    fn quality_with_extra(
        &self,
        evaluator: &QualityEvaluator,
        idx: usize,
        extra: ExecutedSlot,
    ) -> f64 {
        let node = &self.nodes[idx];
        if !node.influence_contains(extra.slot, self.num_slots) {
            return node.quality;
        }
        if node.is_leaf() {
            (node.start..=node.end)
                .map(|j| evaluator.partial_quality_with_extra(j, Some(extra)))
                .sum()
        } else {
            self.quality_with_extra(evaluator, node.left.unwrap(), extra)
                + self.quality_with_extra(evaluator, node.right.unwrap(), extra)
        }
    }

    // ------------------------------------------------------------------
    // Update after an execution
    // ------------------------------------------------------------------

    /// Refreshes the tree after `slot` was executed on `evaluator` (call
    /// *after* `evaluator.execute(slot)`).  Affected subtrees are rebuilt;
    /// untouched subtrees keep their aggregates.
    pub fn notify_executed(&mut self, evaluator: &QualityEvaluator, slot: SlotIndex) {
        self.root = self.update_node(evaluator, self.root, slot);
    }

    fn update_node(&mut self, evaluator: &QualityEvaluator, idx: usize, slot: SlotIndex) -> usize {
        let (affected, start, end) = {
            let n = &self.nodes[idx];
            (n.influence_contains(slot, self.num_slots), n.start, n.end)
        };
        if !affected {
            return idx;
        }
        // The endpoint k-NN sets (and hence the split structure) may have
        // changed: rebuild the affected subtree from scratch.  Rebuilding is
        // local because unaffected sibling subtrees are returned unchanged.
        if self.nodes[idx].is_leaf() {
            self.build_node(evaluator, start, end)
        } else {
            let left = self.nodes[idx].left.unwrap();
            let right = self.nodes[idx].right.unwrap();
            let new_left = self.update_node(evaluator, left, slot);
            let new_right = self.update_node(evaluator, right, slot);
            // Refresh the endpoint information of this node.
            let knn_l = site_knn_set(evaluator, start, self.k);
            let knn_r = site_knn_set(evaluator, end, self.k);
            let kmax_l = Self::kth_distance(&knn_l, start, self.k, self.num_slots);
            let kmax_r = Self::kth_distance(&knn_r, end, self.k, self.num_slots);
            {
                let node = &mut self.nodes[idx];
                node.left = Some(new_left);
                node.right = Some(new_right);
                node.knn_l = knn_l;
                node.knn_r = knn_r;
                node.kmax_l = kmax_l;
                node.kmax_r = kmax_r;
            }
            self.recompute_inner(idx);
            idx
        }
    }

    // ------------------------------------------------------------------
    // Best-first search with upper-bound pruning
    // ------------------------------------------------------------------

    /// Finds the unexecuted, affordable slot maximising the heuristic value
    /// `Δq / cost`, using best-first search with an admissible upper bound.
    ///
    /// Returns `None` when no slot has an available worker.  `max_cost`
    /// restricts candidates to those whose assignment cost does not exceed
    /// the remaining budget.
    pub fn best_slot(
        &self,
        evaluator: &QualityEvaluator,
        max_cost: f64,
        stats: &mut SearchStats,
    ) -> Option<BestSlot> {
        let root = &self.nodes[self.root];
        if root.candidates == 0 {
            return None;
        }
        stats.candidate_slots += root.candidates;
        // Global bound on how far an execution can reach: any affected slot j
        // satisfies |j - e| < kth-NN-distance(j) <= max_kth_dist.
        let reach = root.max_kth_dist;

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        heap.push(HeapEntry {
            bound: self.node_bound(self.root, reach, max_cost),
            node: self.root,
        });

        let mut best: Option<BestSlot> = None;
        while let Some(entry) = heap.pop() {
            if entry.bound <= 0.0 {
                stats.pruned_nodes += 1;
                continue;
            }
            if let Some(b) = &best {
                if entry.bound <= b.heuristic {
                    stats.pruned_nodes += 1;
                    continue;
                }
            }
            stats.visited_nodes += 1;
            let node = &self.nodes[entry.node];
            if node.is_leaf() {
                for slot in node.start..=node.end {
                    if evaluator.is_executed(slot) {
                        continue;
                    }
                    let Some(cost) = self.costs[slot] else {
                        continue;
                    };
                    if cost > max_cost {
                        continue;
                    }
                    stats.evaluated_slots += 1;
                    let gain = self.gain(evaluator, slot);
                    let heuristic = if cost > 0.0 {
                        gain / cost
                    } else {
                        f64::INFINITY
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            heuristic > b.heuristic || (heuristic == b.heuristic && slot < b.slot)
                        }
                    };
                    if better {
                        best = Some(BestSlot {
                            slot,
                            gain,
                            cost,
                            heuristic,
                        });
                    }
                }
            } else {
                for child in [node.left.unwrap(), node.right.unwrap()] {
                    if self.nodes[child].candidates == 0 {
                        continue;
                    }
                    heap.push(HeapEntry {
                        bound: self.node_bound(child, reach, max_cost),
                        node: child,
                    });
                }
            }
        }
        best
    }

    /// Admissible per-leaf *gain* upper bounds: for every leaf with candidate
    /// slots, `(start, end, gain_ub)` such that the exact quality increment of
    /// executing any unexecuted slot in `[start, end]` is at most `gain_ub`.
    ///
    /// This is the numerator of `VTree::node_bound` (the slot's own
    /// partial-quality headroom plus the summed potential of every slot it
    /// can influence), shared so a caller seeding a lazy structure keys its
    /// entries with the *same* admissible bounds the best-first search prunes
    /// with — dividing by each slot's own cost gives a per-slot heuristic
    /// bound at least as tight as the search's per-node one.
    pub fn leaf_bounds(&self) -> Vec<(SlotIndex, SlotIndex, f64)> {
        let root = &self.nodes[self.root];
        if root.candidates == 0 {
            return Vec::new();
        }
        let reach = root.max_kth_dist;
        let mut out = Vec::new();
        self.collect_leaf_bounds(self.root, reach, &mut out);
        out
    }

    fn collect_leaf_bounds(
        &self,
        idx: usize,
        reach: usize,
        out: &mut Vec<(SlotIndex, SlotIndex, f64)>,
    ) {
        let node = &self.nodes[idx];
        if node.candidates == 0 {
            return;
        }
        if node.is_leaf() {
            out.push((node.start, node.end, self.node_gain_bound(idx, reach)));
        } else {
            self.collect_leaf_bounds(node.left.unwrap(), reach, out);
            self.collect_leaf_bounds(node.right.unwrap(), reach, out);
        }
    }

    /// The gain part of [`VTree::node_bound`]: own headroom + reachable
    /// potential.
    fn node_gain_bound(&self, idx: usize, reach: usize) -> f64 {
        let node = &self.nodes[idx];
        let m = self.num_slots as f64;
        let own_ub = (Self::entropy_term(1.0 / m)
            - if node.min_unexec_pq.is_finite() {
                node.min_unexec_pq
            } else {
                0.0
            })
        .max(0.0);
        let lo = node.start.saturating_sub(reach);
        let hi = (node.end + reach).min(self.num_slots - 1);
        own_ub + self.potential_in_range(self.root, lo, hi)
    }

    /// Admissible upper bound on the heuristic value of any slot within the
    /// node:
    ///
    /// * the slot's own partial quality can rise at most to the executed
    ///   value `−(1/m)·log2(1/m)`;
    /// * every other slot it can influence lies within `reach` slots of the
    ///   node's segment, and each such slot can improve at most by its stored
    ///   potential (Eq. 6);
    /// * the cost is at least the node's minimum candidate cost.
    fn node_bound(&self, idx: usize, reach: usize, max_cost: f64) -> f64 {
        let node = &self.nodes[idx];
        if node.candidates == 0 || node.min_cost > max_cost {
            return 0.0;
        }
        let cost = node.min_cost.max(f64::MIN_POSITIVE);
        self.node_gain_bound(idx, reach) / cost
    }

    /// Sum of stored potentials of slots within `[lo, hi]`, accumulated from
    /// node aggregates.
    fn potential_in_range(&self, idx: usize, lo: usize, hi: usize) -> f64 {
        let node = &self.nodes[idx];
        if node.end < lo || node.start > hi {
            return 0.0;
        }
        if lo <= node.start && node.end <= hi {
            return node.potential;
        }
        if node.is_leaf() {
            // Partial overlap with a leaf: the leaf potential is an upper
            // bound for the covered part.
            return node.potential;
        }
        self.potential_in_range(node.left.unwrap(), lo, hi)
            + self.potential_in_range(node.right.unwrap(), lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluator(m: usize, k: usize, executed: &[usize]) -> QualityEvaluator {
        let mut ev = QualityEvaluator::with_slots(m, k);
        for &s in executed {
            ev.execute(s);
        }
        ev
    }

    fn uniform_costs(m: usize, cost: f64) -> Vec<Option<f64>> {
        vec![Some(cost); m]
    }

    #[test]
    fn tree_quality_matches_evaluator() {
        let ev = evaluator(64, 3, &[3, 17, 40, 41, 60]);
        let tree = VTree::build(&ev, uniform_costs(64, 1.0), VTreeConfig::default());
        assert!((tree.total_quality() - ev.quality()).abs() < 1e-9);
    }

    #[test]
    fn tree_depth_respects_ts() {
        let ev = evaluator(128, 3, &[1, 60, 100]);
        for ts in [2, 4, 8, 16] {
            let tree = VTree::build(&ev, uniform_costs(128, 1.0), VTreeConfig::new(ts));
            let max_depth = (128usize / ts).next_power_of_two().trailing_zeros() as usize + 2;
            assert!(
                tree.depth() <= max_depth,
                "ts={ts}: depth {} > {}",
                tree.depth(),
                max_depth
            );
        }
    }

    #[test]
    fn larger_ts_builds_smaller_trees() {
        let ev = evaluator(256, 3, &(0..32).map(|i| i * 8).collect::<Vec<_>>());
        let small = VTree::build(&ev, uniform_costs(256, 1.0), VTreeConfig::new(2));
        let large = VTree::build(&ev, uniform_costs(256, 1.0), VTreeConfig::new(10));
        assert!(large.node_count() <= small.node_count());
    }

    #[test]
    fn gain_matches_plain_evaluator() {
        let ev = evaluator(80, 3, &[5, 22, 23, 50, 77]);
        let tree = VTree::build(&ev, uniform_costs(80, 1.0), VTreeConfig::default());
        for slot in [0, 10, 24, 49, 51, 79] {
            let expected = ev.gain_if_executed(slot);
            let got = tree.gain(&ev, slot);
            assert!(
                (expected - got).abs() < 1e-9,
                "slot {slot}: tree gain {got} vs evaluator {expected}"
            );
        }
    }

    #[test]
    fn gain_of_executed_slot_is_zero() {
        let ev = evaluator(40, 2, &[10]);
        let tree = VTree::build(&ev, uniform_costs(40, 1.0), VTreeConfig::default());
        assert_eq!(tree.gain(&ev, 10), 0.0);
    }

    #[test]
    fn notify_executed_keeps_tree_consistent() {
        let mut ev = evaluator(96, 3, &[]);
        let mut tree = VTree::build(&ev, uniform_costs(96, 1.0), VTreeConfig::default());
        for slot in [48, 10, 70, 11, 90, 0, 30] {
            ev.execute(slot);
            tree.notify_executed(&ev, slot);
            assert!(
                (tree.total_quality() - ev.quality()).abs() < 1e-9,
                "after executing {slot}"
            );
            // Gains must stay exact after updates.
            for probe in [5, 33, 60, 95] {
                let expected = ev.gain_if_executed(probe);
                let got = tree.gain(&ev, probe);
                assert!(
                    (expected - got).abs() < 1e-9,
                    "probe {probe} after executing {slot}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn best_slot_matches_brute_force() {
        let mut ev = evaluator(60, 3, &[]);
        // Varying costs to exercise the heuristic denominator.
        let costs: Vec<Option<f64>> = (0..60).map(|i| Some(1.0 + (i % 7) as f64 * 0.5)).collect();
        let mut tree = VTree::build(&ev, costs.clone(), VTreeConfig::default());
        let mut stats = SearchStats::default();
        for _ in 0..8 {
            let best = tree.best_slot(&ev, f64::INFINITY, &mut stats).unwrap();
            // Brute force: maximum gain/cost over all unexecuted slots.
            let mut best_ratio = f64::NEG_INFINITY;
            for (slot, cost) in costs.iter().enumerate() {
                if ev.is_executed(slot) {
                    continue;
                }
                let ratio = ev.gain_if_executed(slot) / cost.unwrap();
                if ratio > best_ratio {
                    best_ratio = ratio;
                }
            }
            assert!(
                (best.heuristic - best_ratio).abs() < 1e-9,
                "best-first {} vs brute force {}",
                best.heuristic,
                best_ratio
            );
            ev.execute(best.slot);
            tree.notify_executed(&ev, best.slot);
        }
    }

    #[test]
    fn best_slot_respects_max_cost() {
        let ev = evaluator(20, 2, &[]);
        let costs: Vec<Option<f64>> = (0..20)
            .map(|i| Some(if i < 10 { 5.0 } else { 1.0 }))
            .collect();
        let tree = VTree::build(&ev, costs, VTreeConfig::default());
        let mut stats = SearchStats::default();
        let best = tree.best_slot(&ev, 2.0, &mut stats).unwrap();
        assert!(best.slot >= 10, "must pick an affordable slot");
        assert!(best.cost <= 2.0);
    }

    #[test]
    fn best_slot_none_when_no_candidates() {
        let ev = evaluator(10, 2, &[]);
        let tree = VTree::build(&ev, vec![None; 10], VTreeConfig::default());
        let mut stats = SearchStats::default();
        assert!(tree.best_slot(&ev, f64::INFINITY, &mut stats).is_none());
    }

    #[test]
    fn pruning_kicks_in_once_executions_accumulate() {
        let mut ev = evaluator(400, 3, &[]);
        // Slots in the second half of the timeline are far from any worker
        // (high assignment cost): their heuristic values cannot compete, so
        // the upper bound prunes them without exact evaluation.
        let costs: Vec<Option<f64>> = (0..400)
            .map(|i| Some(if i < 200 { 1.0 } else { 50.0 }))
            .collect();
        let mut tree = VTree::build(&ev, costs, VTreeConfig::default());
        // Execute a spread of slots so that k-NN reach shrinks.
        for slot in (0..400).step_by(25) {
            ev.execute(slot);
            tree.notify_executed(&ev, slot);
        }
        let mut stats = SearchStats::default();
        let _ = tree.best_slot(&ev, f64::INFINITY, &mut stats);
        assert!(
            stats.pruning_ratio() > 0.3,
            "expected meaningful pruning, got ratio {} ({} / {})",
            stats.pruning_ratio(),
            stats.evaluated_slots,
            stats.candidate_slots
        );
    }

    #[test]
    fn update_cost_changes_candidate_selection() {
        let ev = evaluator(30, 2, &[15]);
        let mut tree = VTree::build(&ev, uniform_costs(30, 1.0), VTreeConfig::default());
        let mut stats = SearchStats::default();
        let before = tree.best_slot(&ev, f64::INFINITY, &mut stats).unwrap();
        // Make the previously best slot prohibitively expensive.
        tree.update_cost(&ev, before.slot, Some(1000.0));
        let after = tree.best_slot(&ev, f64::INFINITY, &mut stats).unwrap();
        assert_ne!(before.slot, after.slot);
        // Removing the cost entirely excludes the slot.
        tree.update_cost(&ev, after.slot, None);
        let third = tree.best_slot(&ev, f64::INFINITY, &mut stats).unwrap();
        assert_ne!(third.slot, after.slot);
    }

    #[test]
    fn search_stats_merge_accumulates() {
        let mut a = SearchStats {
            evaluated_slots: 2,
            candidate_slots: 10,
            visited_nodes: 3,
            pruned_nodes: 1,
        };
        let b = SearchStats {
            evaluated_slots: 3,
            candidate_slots: 5,
            visited_nodes: 2,
            pruned_nodes: 4,
        };
        a.merge(&b);
        assert_eq!(a.evaluated_slots, 5);
        assert_eq!(a.candidate_slots, 15);
        assert_eq!(a.visited_nodes, 5);
        assert_eq!(a.pruned_nodes, 5);
        assert!((a.pruning_ratio() - (1.0 - 5.0 / 15.0)).abs() < 1e-12);
    }
}
