//! # tcsc-index
//!
//! Indexing structures for Time-Continuous Spatial Crowdsourcing (TCSC):
//!
//! * [`voronoi`] — the exact one-dimensional order-k Voronoi diagram over a
//!   task's executed slots, capturing the locality of temporal k-NN search
//!   (Section III-C of the paper);
//! * [`vtree`] — the approximated Voronoi diagram indexed by an aggregated
//!   binary tree, with exact quality-gain computation that reuses unaffected
//!   subtree aggregates, and the best-first search with upper-bound pruning
//!   used by the `Approx*` algorithm;
//! * [`spatial`] — a per-time-slot uniform grid over worker locations for
//!   nearest-available-worker queries (worker cost retrieval), and the
//!   [`SpatialQuery`] / [`MutableSpatialIndex`] traits shared by every worker
//!   index;
//! * [`sharded`] — the domain partitioned into spatial-tile shards (plus an
//!   optional time-range split) behind a neighbour-ring router, answering the
//!   same queries bit-identically while keeping shards independently owned;
//!   worker insert/remove/move mutate single tile buckets in place, staying
//!   bit-identical to a from-scratch rebuild.
//!
//! These indexes are consumed by the assignment algorithms in `tcsc-assign`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sharded;
pub mod spatial;
pub mod voronoi;
pub mod vtree;

pub use sharded::{ShardGridConfig, ShardedWorkerIndex};
pub use spatial::{
    IndexMutation, IndexedWorker, MutableSpatialIndex, NearestWorker, SpatialQuery, WorkerIndex,
    WorkerProfile,
};
pub use voronoi::{site_knn_set, OrderKVoronoi, VoronoiCell};
pub use vtree::{BestSlot, SearchStats, VTree, VTreeConfig};
