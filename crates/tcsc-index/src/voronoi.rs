//! Exact one-dimensional order-k Voronoi diagram over the executed slots of a
//! task (Section III-C of the paper).
//!
//! The timeline of a task is the one-dimensional interval `[0, m)`.  The
//! executed slots act as Voronoi *sites*; an order-k Voronoi cell is a maximal
//! interval of slots that share the same set of k nearest executed slots.  The
//! paper uses the diagram to exploit the *locality* of k-NN searching: within
//! a cell, interpolation results (and therefore finishing probabilities) are
//! identical functions of the same neighbour set, so they can be reused.
//!
//! This module provides the exact diagram; the `vtree` module provides the
//! approximated, tree-indexed version that the `Approx*` algorithm uses.

use tcsc_core::quality::QualityEvaluator;
use tcsc_core::SlotIndex;

/// A single order-k Voronoi cell: an interval of slots sharing one k-NN set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoronoiCell {
    /// First slot of the cell (inclusive).
    pub start: SlotIndex,
    /// Last slot of the cell (inclusive).
    pub end: SlotIndex,
    /// The shared k-NN result: executed slots sorted ascending.  Contains
    /// fewer than `k` entries when fewer than `k` slots have been executed.
    pub neighbors: Vec<SlotIndex>,
}

impl VoronoiCell {
    /// Number of slots covered by the cell.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Whether the cell is empty (never true for cells produced by
    /// [`OrderKVoronoi::build`]).
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }

    /// Whether a slot belongs to the cell.
    pub fn contains(&self, slot: SlotIndex) -> bool {
        (self.start..=self.end).contains(&slot)
    }
}

/// The exact order-k Voronoi diagram of a task's executed slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKVoronoi {
    cells: Vec<VoronoiCell>,
    k: usize,
    num_slots: usize,
}

/// The k-NN *site set* of a slot: the k nearest executed slots, where an
/// executed slot is considered its own nearest neighbour (distance zero), as
/// in a classical Voronoi diagram of sites.  Returns fewer than `k` slots when
/// fewer than `k` slots are executed.  The result is sorted ascending.
pub fn site_knn_set(evaluator: &QualityEvaluator, slot: SlotIndex, k: usize) -> Vec<SlotIndex> {
    let executed = evaluator.executed();
    if executed.is_empty() {
        return Vec::new();
    }
    // Two-pointer outward walk over the sorted executed slots, including the
    // query slot itself when executed.
    let pos = executed
        .binary_search_by_key(&slot, |e| e.slot)
        .unwrap_or_else(|p| p);
    let mut left: isize = pos as isize - 1;
    let mut right: usize = pos;
    let mut result = Vec::with_capacity(k);
    while result.len() < k && (left >= 0 || right < executed.len()) {
        let left_d = (left >= 0).then(|| executed[left as usize].slot.abs_diff(slot));
        let right_d = (right < executed.len()).then(|| executed[right].slot.abs_diff(slot));
        match (left_d, right_d) {
            (Some(ld), Some(rd)) => {
                // Ties go to the earlier (left) slot for determinism.
                if ld <= rd {
                    result.push(executed[left as usize].slot);
                    left -= 1;
                } else {
                    result.push(executed[right].slot);
                    right += 1;
                }
            }
            (Some(_), None) => {
                result.push(executed[left as usize].slot);
                left -= 1;
            }
            (None, Some(_)) => {
                result.push(executed[right].slot);
                right += 1;
            }
            (None, None) => break,
        }
    }
    result.sort_unstable();
    result
}

impl OrderKVoronoi {
    /// Builds the exact diagram for the current executed-slot set of
    /// `evaluator`, using the evaluator's own `k`.
    pub fn build(evaluator: &QualityEvaluator) -> Self {
        Self::build_with_k(evaluator, evaluator.k())
    }

    /// Builds the diagram with an explicit order `k`.
    pub fn build_with_k(evaluator: &QualityEvaluator, k: usize) -> Self {
        let m = evaluator.num_slots();
        let mut cells: Vec<VoronoiCell> = Vec::new();
        for slot in 0..m {
            let neighbors = site_knn_set(evaluator, slot, k);
            match cells.last_mut() {
                Some(cell) if cell.neighbors == neighbors => cell.end = slot,
                _ => cells.push(VoronoiCell {
                    start: slot,
                    end: slot,
                    neighbors,
                }),
            }
        }
        Self {
            cells,
            k,
            num_slots: m,
        }
    }

    /// The Voronoi cells in timeline order.
    pub fn cells(&self) -> &[VoronoiCell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the diagram has no cells (only for `m == 0`, which cannot be
    /// constructed through [`QualityEvaluator`]).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The order `k` of the diagram.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of slots covered.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The cell containing `slot`.
    pub fn cell_of(&self, slot: SlotIndex) -> Option<&VoronoiCell> {
        // Cells are sorted and contiguous; binary search on start.
        let idx = self
            .cells
            .partition_point(|c| c.start <= slot)
            .checked_sub(1)?;
        let cell = &self.cells[idx];
        cell.contains(slot).then_some(cell)
    }

    /// The shared k-NN set of the cell containing `slot` (constant-time k-NN
    /// lookup once the diagram is built).
    pub fn knn_of(&self, slot: SlotIndex) -> Option<&[SlotIndex]> {
        self.cell_of(slot).map(|c| c.neighbors.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluator(m: usize, k: usize, executed: &[usize]) -> QualityEvaluator {
        let mut ev = QualityEvaluator::with_slots(m, k);
        for &s in executed {
            ev.execute(s);
        }
        ev
    }

    #[test]
    fn empty_execution_yields_single_cell_with_no_neighbors() {
        let ev = evaluator(10, 2, &[]);
        let vd = OrderKVoronoi::build(&ev);
        assert_eq!(vd.len(), 1);
        assert_eq!(vd.cells()[0].start, 0);
        assert_eq!(vd.cells()[0].end, 9);
        assert!(vd.cells()[0].neighbors.is_empty());
    }

    #[test]
    fn fig3_cells_match_paper() {
        // Fig. 3 (c): k = 2, executed (1-based) {2, 4, 7, 9}.  The first cell
        // V(τ(2), τ(4)) covers 1-based slots 1..=4.
        let ev = evaluator(100, 2, &[1, 3, 6, 8]);
        let vd = OrderKVoronoi::build(&ev);
        let first = vd.cell_of(0).unwrap();
        assert_eq!(first.start, 0);
        assert_eq!(first.end, 3);
        assert_eq!(first.neighbors, vec![1, 3]);
        // Slots 1-based 5..=?: V(τ(4), τ(7)) etc.  Verify each slot's cell
        // neighbours match a direct site k-NN query.
        for slot in 0..100 {
            assert_eq!(
                vd.knn_of(slot).unwrap(),
                site_knn_set(&ev, slot, 2).as_slice(),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn cells_partition_the_timeline() {
        let ev = evaluator(60, 3, &[5, 12, 13, 40, 55]);
        let vd = OrderKVoronoi::build(&ev);
        let mut covered = 0usize;
        let mut next = 0usize;
        for cell in vd.cells() {
            assert_eq!(cell.start, next, "cells must be contiguous");
            assert!(cell.end >= cell.start);
            assert!(!cell.is_empty());
            covered += cell.len();
            next = cell.end + 1;
        }
        assert_eq!(covered, 60);
        assert_eq!(next, 60);
    }

    #[test]
    fn cell_count_is_bounded_by_k_times_sites() {
        // The average number of order-k cells is O(k (n_sites)) in 1D.
        let executed: Vec<usize> = (0..20).map(|i| i * 7 % 100).collect();
        let ev = evaluator(100, 3, &executed);
        let vd = OrderKVoronoi::build(&ev);
        assert!(vd.len() <= 3 * 20 + 1, "got {} cells", vd.len());
    }

    #[test]
    fn lemma8_same_endpoint_knn_implies_same_cell() {
        // Lemma 8: if knn(l) == knn(r) then every slot in [l, r] has the same
        // k-NN set.
        let ev = evaluator(80, 2, &[10, 30, 31, 60]);
        let vd = OrderKVoronoi::build(&ev);
        // Sanity: the diagram itself satisfies the lemma cell by cell.
        for cell in vd.cells() {
            assert_eq!(
                site_knn_set(&ev, cell.start, 2),
                site_knn_set(&ev, cell.end, 2)
            );
        }
        for l in 0..80 {
            for r in l..80 {
                let kl = site_knn_set(&ev, l, 2);
                let kr = site_knn_set(&ev, r, 2);
                if kl == kr {
                    for e in l..=r {
                        assert_eq!(site_knn_set(&ev, e, 2), kl, "l={l} r={r} e={e}");
                    }
                }
                // Keep the quadratic loop small.
                if r > l + 20 {
                    break;
                }
            }
        }
    }

    #[test]
    fn site_is_its_own_nearest_neighbor() {
        let ev = evaluator(30, 1, &[4, 20]);
        assert_eq!(site_knn_set(&ev, 4, 1), vec![4]);
        assert_eq!(site_knn_set(&ev, 20, 1), vec![20]);
        assert_eq!(site_knn_set(&ev, 10, 1), vec![4]);
        assert_eq!(site_knn_set(&ev, 13, 1), vec![20]);
    }

    #[test]
    fn fewer_sites_than_k_returns_all_sites() {
        let ev = evaluator(30, 5, &[4, 20]);
        assert_eq!(site_knn_set(&ev, 0, 5), vec![4, 20]);
    }

    #[test]
    fn cell_of_out_of_range_is_none() {
        let ev = evaluator(10, 2, &[3]);
        let vd = OrderKVoronoi::build(&ev);
        assert!(vd.cell_of(10).is_none());
        assert!(vd.cell_of(9).is_some());
    }
}
