//! Spatial index over worker locations, per time slot.
//!
//! The assignment algorithms repeatedly ask: *"who is the nearest available
//! worker to this task at time slot `t`?"* (and, for the multi-task conflict
//! resolution of Section IV-A, *"who is the j-th nearest?"*).  This module
//! answers those queries with a per-slot uniform grid over worker locations,
//! which is the classic light-weight index for low-dimensional nearest
//! neighbour search.  A brute-force path is kept both as a correctness oracle
//! for the tests and for very small pools.

use std::collections::{BTreeSet, HashMap};

use tcsc_core::{Domain, Location, SlotIndex, Worker, WorkerId, WorkerPool};

/// Nearest-available-worker queries over a per-slot worker index.
///
/// Implemented by the dense [`WorkerIndex`] (one grid over the whole domain)
/// and by [`crate::sharded::ShardedWorkerIndex`] (a router over spatial-tile
/// shards).  The two implementations are **bit-identical**: every method
/// resolves distance ties by ascending worker id, so the assignment layer can
/// swap one for the other without changing a single plan (locked in by
/// `tests/sharded_properties.rs`).
pub trait SpatialQuery {
    /// Number of time slots covered by the index.
    fn num_slots(&self) -> usize;

    /// Number of workers in the indexed pool.
    fn total_workers(&self) -> usize;

    /// Number of workers available during `slot`.
    fn available_count(&self, slot: SlotIndex) -> usize;

    /// The nearest available worker to `query` during `slot`.
    fn nearest(&self, slot: SlotIndex, query: &Location) -> Option<NearestWorker>;

    /// The `count` nearest available workers to `query` during `slot`, sorted
    /// by `(distance, worker id)`.
    fn k_nearest(&self, slot: SlotIndex, query: &Location, count: usize) -> Vec<NearestWorker>;

    /// The nearest worker to `query` during `slot` whose id is not in
    /// `excluded` (the occupancy-aware conflict-fallback query).
    fn nearest_excluding_set(
        &self,
        slot: SlotIndex,
        query: &Location,
        excluded: &BTreeSet<WorkerId>,
    ) -> Option<NearestWorker>;
}

/// Point mutations over a per-slot spatial index: insert, remove and move a
/// worker without rebuilding the whole structure.
///
/// Implemented by the dense [`WorkerIndex`] (the oracle: each touched slot
/// grid is rebuilt whole) and by [`crate::sharded::ShardedWorkerIndex`]
/// (tile-local: only the affected tile bucket(s) are spliced and re-gridded).
/// Both uphold the **rebuild equivalence invariant**: after any sequence of
/// mutations, every [`SpatialQuery`] method answers bit-identically to an
/// index freshly built from the equivalently mutated worker pool — same
/// workers, same order, same `f64` distances.  This holds because each
/// mutation keeps the affected per-slot worker list in ascending-id order
/// (the pool iteration order a fresh build would produce) and rebuilds the
/// affected grid from that list with the same deterministic constructor a
/// fresh build uses.  `tests/mutable_index_fuzz.rs` locks the invariant in
/// over hundreds of seeded mutation tapes.
pub trait MutableSpatialIndex: SpatialQuery {
    /// Inserts a new worker (all in-horizon availability entries).  Rejected
    /// (`applied == false`) when a worker with the same id is already
    /// registered.
    fn insert_worker(&mut self, worker: &Worker) -> IndexMutation;

    /// Removes a worker and all its availability entries.  Rejected when the
    /// id is not registered.
    fn remove_worker(&mut self, id: WorkerId) -> IndexMutation;

    /// Moves a worker: every in-horizon availability entry is relocated to
    /// `new_loc` (the mobile-worker model — one physical position at a time).
    /// Rejected when the id is not registered.
    fn move_worker(&mut self, id: WorkerId, new_loc: Location) -> IndexMutation;

    /// The registered state of a worker: reliability plus its in-horizon
    /// `(slot, location)` entries (ascending slot).  `None` for unknown ids.
    /// Workers whose availability lies entirely beyond the slot horizon are
    /// registered with an empty entry list.
    fn worker_profile(&self, id: WorkerId) -> Option<WorkerProfile>;

    /// Total number of indexed `(worker, slot)` entries — the work a
    /// from-scratch rebuild would re-grid.
    fn indexed_entries(&self) -> usize;

    /// Bucket-occupancy imbalance as `max_len * 1000 / mean_len` over the
    /// index's non-empty buckets (milli-scaled; `1000` = perfectly balanced,
    /// `0` = no buckets).  The service drivers export this as a gauge.
    fn occupancy_imbalance_milli(&self) -> u64;
}

/// Outcome of one [`MutableSpatialIndex`] operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexMutation {
    /// Whether the operation applied (`false`: duplicate id on insert,
    /// unknown id on remove/move — the index is unchanged).
    pub applied: bool,
    /// Number of `(worker, slot)` entries re-gridded by the splice — the
    /// actual maintenance cost paid.
    pub entries_touched: usize,
    /// What a from-scratch rebuild at the resulting state would re-grid
    /// (the total indexed entries): the cost the in-place mutation avoided.
    pub rebuild_equiv_entries: usize,
}

/// A registered worker's indexed state, as returned by
/// [`MutableSpatialIndex::worker_profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// The worker's reliability score.
    pub reliability: f64,
    /// In-horizon `(slot, location)` entries, ascending slot.
    pub entries: Vec<(SlotIndex, Location)>,
}

/// Registry of the workers an index currently holds: the lookup that makes
/// `remove`/`move` local (which buckets hold this worker?) without consulting
/// the original pool.  Shared by the dense and sharded indexes.
#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerRegistry {
    entries: HashMap<WorkerId, RegisteredWorker>,
}

#[derive(Debug, Clone)]
pub(crate) struct RegisteredWorker {
    reliability: f64,
    /// In-horizon `(slot, location)` entries, ascending slot.
    slots: Vec<(SlotIndex, Location)>,
}

impl WorkerRegistry {
    pub(crate) fn from_pool(pool: &WorkerPool, num_slots: usize) -> Self {
        let mut registry = Self::default();
        for worker in pool.workers() {
            registry.insert(worker, num_slots);
        }
        registry
    }

    /// Registers a worker; returns its in-horizon entries, or `None` when the
    /// id is already present (the registry is unchanged).
    pub(crate) fn insert(
        &mut self,
        worker: &Worker,
        num_slots: usize,
    ) -> Option<Vec<(SlotIndex, Location)>> {
        if self.entries.contains_key(&worker.id) {
            return None;
        }
        let slots: Vec<(SlotIndex, Location)> = worker
            .availability()
            .iter()
            .filter(|ws| ws.slot < num_slots)
            .map(|ws| (ws.slot, ws.location))
            .collect();
        self.entries.insert(
            worker.id,
            RegisteredWorker {
                reliability: worker.reliability,
                slots: slots.clone(),
            },
        );
        Some(slots)
    }

    /// Unregisters a worker, returning its entries (`None` for unknown ids).
    pub(crate) fn remove(&mut self, id: WorkerId) -> Option<RegisteredWorker> {
        self.entries.remove(&id)
    }

    /// Relocates every entry of a worker to `new_loc`, returning the
    /// *previous* `(slot, location)` entries (`None` for unknown ids).
    pub(crate) fn relocate(
        &mut self,
        id: WorkerId,
        new_loc: Location,
    ) -> Option<Vec<(SlotIndex, Location)>> {
        let reg = self.entries.get_mut(&id)?;
        let old = reg.slots.clone();
        for (_, loc) in &mut reg.slots {
            *loc = new_loc;
        }
        Some(old)
    }

    pub(crate) fn get(&self, id: WorkerId) -> Option<&RegisteredWorker> {
        self.entries.get(&id)
    }

    pub(crate) fn profile(&self, id: WorkerId) -> Option<WorkerProfile> {
        self.entries.get(&id).map(|reg| WorkerProfile {
            reliability: reg.reliability,
            entries: reg.slots.clone(),
        })
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

impl RegisteredWorker {
    pub(crate) fn reliability(&self) -> f64 {
        self.reliability
    }

    pub(crate) fn slots(&self) -> &[(SlotIndex, Location)] {
        &self.slots
    }
}

/// One indexed worker position: a worker available at the slot of the
/// enclosing per-slot grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexedWorker {
    /// The worker id.
    pub worker: WorkerId,
    /// The worker's position during the slot.
    pub location: Location,
    /// The worker's reliability score.
    pub reliability: f64,
}

/// Result of a nearest-worker query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearestWorker {
    /// The worker found.
    pub worker: WorkerId,
    /// The worker's position during the queried slot.
    pub location: Location,
    /// The worker's reliability score.
    pub reliability: f64,
    /// Euclidean distance from the query point.
    pub distance: f64,
}

/// Uniform grid over the workers available during a single time slot.
///
/// Shared between the dense [`WorkerIndex`] (one grid per slot over the whole
/// domain) and the sharded index (one grid per `(shard, slot)` bucket over
/// the shard's tile), so both resolve distance ties identically: workers are
/// stored in ascending id order and every query sorts by
/// `(distance, position)`.
#[derive(Debug, Clone)]
pub(crate) struct SlotGrid {
    /// All workers available in this slot.
    workers: Vec<IndexedWorker>,
    /// Grid buckets holding indices into `workers`.
    cells: Vec<Vec<u32>>,
    cols: usize,
    rows: usize,
    cell_size: f64,
    origin: Location,
}

impl SlotGrid {
    pub(crate) fn build(workers: Vec<IndexedWorker>, domain: &Domain) -> Self {
        // Aim for a handful of workers per cell on average.
        let n = workers.len().max(1);
        let target_cells = (n as f64 / 2.0).ceil().max(1.0);
        let cols = (target_cells.sqrt().ceil() as usize).max(1);
        let rows = cols;
        let cell_size = (domain.width().max(domain.height()) / cols as f64).max(f64::MIN_POSITIVE);
        let mut cells = vec![Vec::new(); cols * rows];
        let origin = domain.min;
        for (i, w) in workers.iter().enumerate() {
            let (cx, cy) = Self::cell_coords(origin, cell_size, cols, rows, &w.location);
            cells[cy * cols + cx].push(i as u32);
        }
        Self {
            workers,
            cells,
            cols,
            rows,
            cell_size,
            origin,
        }
    }

    /// The indexed workers in ascending-id (build) order.
    pub(crate) fn workers(&self) -> &[IndexedWorker] {
        &self.workers
    }

    /// Takes the worker list out of the grid for a splice-and-rebuild
    /// mutation.  The grid is left with dangling cell indices and MUST be
    /// replaced by a fresh [`SlotGrid::build`] before the next query — the
    /// mutable-index ops do exactly that, which is what keeps a mutated grid
    /// bit-identical to a freshly built one (grid geometry depends on the
    /// worker count, so in-place cell edits could not be).
    pub(crate) fn take_workers(&mut self) -> Vec<IndexedWorker> {
        std::mem::take(&mut self.workers)
    }

    /// `(max_len, non_empty_cells, total_entries)` over the grid's cells —
    /// the building block of the occupancy-imbalance gauge.
    pub(crate) fn cell_stats(&self) -> (usize, usize, usize) {
        let mut max = 0usize;
        let mut non_empty = 0usize;
        let mut total = 0usize;
        for cell in &self.cells {
            if cell.is_empty() {
                continue;
            }
            max = max.max(cell.len());
            non_empty += 1;
            total += cell.len();
        }
        (max, non_empty, total)
    }

    fn cell_coords(
        origin: Location,
        cell_size: f64,
        cols: usize,
        rows: usize,
        loc: &Location,
    ) -> (usize, usize) {
        let cx = ((loc.x - origin.x) / cell_size).floor().max(0.0) as usize;
        let cy = ((loc.y - origin.y) / cell_size).floor().max(0.0) as usize;
        (cx.min(cols - 1), cy.min(rows - 1))
    }

    /// Lower bound on the distance from `query` to any worker in a cell NOT
    /// yet scanned after rings `0..=ring` around `(qx, qy)`: the distance to
    /// the nearest edge of the scanned cell rectangle (sides already clamped
    /// to the grid border are exhausted and contribute `INFINITY`).
    ///
    /// A search may stop once its current answer is **strictly** below this
    /// bound; at exact equality one more ring is scanned so a worker sitting
    /// precisely on the rectangle edge can still win a distance tie on its
    /// id.  Shared by [`SlotGrid::nearest`] and [`SlotGrid::nearest_filtered`]
    /// so the bound math exists exactly once.
    fn unscanned_bound(&self, query: &Location, qx: usize, qy: usize, ring: usize) -> f64 {
        let mut bound = f64::INFINITY;
        if qx > ring {
            bound = bound.min(query.x - (self.origin.x + (qx - ring) as f64 * self.cell_size));
        }
        if qx + ring + 1 < self.cols {
            bound = bound.min(self.origin.x + (qx + ring + 1) as f64 * self.cell_size - query.x);
        }
        if qy > ring {
            bound = bound.min(query.y - (self.origin.y + (qy - ring) as f64 * self.cell_size));
        }
        if qy + ring + 1 < self.rows {
            bound = bound.min(self.origin.y + (qy + ring + 1) as f64 * self.cell_size - query.y);
        }
        bound
    }

    /// The `count` nearest workers to `query`, sorted by distance.
    /// Ring-expansion search over the grid; falls back to scanning everything
    /// when the rings are exhausted.
    pub(crate) fn nearest(&self, query: &Location, count: usize) -> Vec<NearestWorker> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.nearest_append(query, count, &mut scratch, &mut out);
        out
    }

    /// Allocation-free variant of [`SlotGrid::nearest`]: runs the search in
    /// the caller-provided `scratch` buffer and *appends* the top-`count`
    /// answers to `out` (callers merging several tiles reuse both buffers
    /// across tiles and calls).  Identical candidates in identical order.
    pub(crate) fn nearest_append(
        &self,
        query: &Location,
        count: usize,
        scratch: &mut Vec<(f64, u32)>,
        out: &mut Vec<NearestWorker>,
    ) {
        if self.workers.is_empty() || count == 0 {
            return;
        }
        scratch.clear();
        let found: &mut Vec<(f64, u32)> = scratch;
        // Tiny grids (common for the sharded index's per-tile buckets, which
        // hold a few workers each) skip the ring machinery: every worker is a
        // candidate anyway, and the final sort yields the identical order the
        // ring expansion would.
        if self.workers.len() <= count {
            found.extend(
                self.workers
                    .iter()
                    .enumerate()
                    .map(|(i, w)| (query.distance(&w.location), i as u32)),
            );
            found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            out.extend(found.iter().map(|&(d, idx)| {
                let w = &self.workers[idx as usize];
                NearestWorker {
                    worker: w.worker,
                    location: w.location,
                    reliability: w.reliability,
                    distance: d,
                }
            }));
            return;
        }
        let (qx, qy) = Self::cell_coords(self.origin, self.cell_size, self.cols, self.rows, query);
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Visit the cells of this ring.
            let x_lo = qx.saturating_sub(ring);
            let x_hi = (qx + ring).min(self.cols - 1);
            let y_lo = qy.saturating_sub(ring);
            let y_hi = (qy + ring).min(self.rows - 1);
            for cy in y_lo..=y_hi {
                for cx in x_lo..=x_hi {
                    // Visit cells whose exact Chebyshev distance equals the
                    // ring: clamping at the grid borders would otherwise
                    // re-visit border cells on every later ring, and the
                    // duplicate entries would trip the stop condition before
                    // `count` *distinct* workers have been collected.
                    if cx.abs_diff(qx).max(cy.abs_diff(qy)) != ring {
                        continue;
                    }
                    for &idx in &self.cells[cy * self.cols + cx] {
                        let d = query.distance(&self.workers[idx as usize].location);
                        found.push((d, idx));
                    }
                }
            }
            // Stop once we have enough candidates and no unscanned cell can
            // hold anything closer (see `unscanned_bound`).
            if found.len() >= count {
                found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let kth = found[count - 1].0;
                if kth < self.unscanned_bound(query, qx, qy, ring) {
                    break;
                }
            }
        }
        found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out.extend(found.iter().take(count).map(|&(d, idx)| {
            let w = &self.workers[idx as usize];
            NearestWorker {
                worker: w.worker,
                location: w.location,
                reliability: w.reliability,
                distance: d,
            }
        }));
    }

    /// The nearest worker to `query` for which `skip` is false, with ties
    /// resolved by ascending worker id (the per-bucket building block of the
    /// sharded index's occupancy-filtered search).
    ///
    /// Same ring expansion and stop bound as [`SlotGrid::nearest`]: a ring is
    /// scanned while the best answer so far is not strictly closer than the
    /// edge of the scanned cell rectangle.
    pub(crate) fn nearest_filtered(
        &self,
        query: &Location,
        mut skip: impl FnMut(WorkerId) -> bool,
    ) -> Option<(f64, IndexedWorker)> {
        if self.workers.is_empty() {
            return None;
        }
        let (qx, qy) = Self::cell_coords(self.origin, self.cell_size, self.cols, self.rows, query);
        let mut best: Option<(f64, IndexedWorker)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            let x_lo = qx.saturating_sub(ring);
            let x_hi = (qx + ring).min(self.cols - 1);
            let y_lo = qy.saturating_sub(ring);
            let y_hi = (qy + ring).min(self.rows - 1);
            for cy in y_lo..=y_hi {
                for cx in x_lo..=x_hi {
                    if cx.abs_diff(qx).max(cy.abs_diff(qy)) != ring {
                        continue;
                    }
                    for &idx in &self.cells[cy * self.cols + cx] {
                        let w = self.workers[idx as usize];
                        if skip(w.worker) {
                            continue;
                        }
                        let d = query.distance(&w.location);
                        let better = match &best {
                            None => true,
                            Some((bd, bw)) => d < *bd || (d == *bd && w.worker < bw.worker),
                        };
                        if better {
                            best = Some((d, w));
                        }
                    }
                }
            }
            if let Some((bd, _)) = &best {
                if *bd < self.unscanned_bound(query, qx, qy, ring) {
                    break;
                }
            }
        }
        best
    }
}

/// Per-slot spatial index over a worker pool.
///
/// Building the index costs `O(Σ availability)`; each nearest-worker query is
/// answered from the grid of the queried slot only.
#[derive(Debug, Clone)]
pub struct WorkerIndex {
    slots: Vec<SlotGrid>,
    /// The build domain, kept so mutations can re-grid a slot identically.
    domain: Domain,
    registry: WorkerRegistry,
    indexed_entries: usize,
}

impl WorkerIndex {
    /// Builds the index for the given pool over `num_slots` time slots within
    /// `domain`.
    pub fn build(pool: &WorkerPool, num_slots: usize, domain: &Domain) -> Self {
        let mut per_slot: Vec<Vec<IndexedWorker>> = vec![Vec::new(); num_slots];
        for worker in pool.workers() {
            for ws in worker.availability() {
                if ws.slot < num_slots {
                    per_slot[ws.slot].push(IndexedWorker {
                        worker: worker.id,
                        location: ws.location,
                        reliability: worker.reliability,
                    });
                }
            }
        }
        let indexed_entries = per_slot.iter().map(Vec::len).sum();
        let slots = per_slot
            .into_iter()
            .map(|workers| SlotGrid::build(workers, domain))
            .collect();
        Self {
            slots,
            domain: *domain,
            registry: WorkerRegistry::from_pool(pool, num_slots),
            indexed_entries,
        }
    }

    /// Splices one slot's worker list and rebuilds its grid whole — the dense
    /// index's (deliberately coarse) unit of mutation, and the reason it is
    /// the rebuild-equivalence oracle: the rebuilt grid is *by construction*
    /// the grid a fresh [`WorkerIndex::build`] would produce for the slot.
    /// Returns the number of entries re-gridded.
    fn regrid_slot(
        &mut self,
        slot: SlotIndex,
        edit: impl FnOnce(&mut Vec<IndexedWorker>),
    ) -> usize {
        let mut workers = self.slots[slot].take_workers();
        let before = workers.len();
        edit(&mut workers);
        let after = workers.len();
        self.indexed_entries = self.indexed_entries + after - before;
        self.slots[slot] = SlotGrid::build(workers, &self.domain);
        after
    }

    /// Number of time slots covered by the index.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of workers in the indexed pool.
    pub fn total_workers(&self) -> usize {
        self.registry.len()
    }

    /// Number of workers available during `slot`.
    pub fn available_count(&self, slot: SlotIndex) -> usize {
        self.slots.get(slot).map_or(0, |g| g.workers.len())
    }

    /// The nearest available worker to `query` during `slot`.
    pub fn nearest(&self, slot: SlotIndex, query: &Location) -> Option<NearestWorker> {
        self.k_nearest(slot, query, 1).into_iter().next()
    }

    /// The `count` nearest available workers to `query` during `slot`, sorted
    /// by distance (used for the `(d+1)`-NN bound expansion of the conflict
    /// graph and for falling back to the 2nd, 3rd, ... nearest worker when
    /// conflicts arise).
    pub fn k_nearest(&self, slot: SlotIndex, query: &Location, count: usize) -> Vec<NearestWorker> {
        self.slots
            .get(slot)
            .map_or_else(Vec::new, |g| g.nearest(query, count))
    }

    /// The `rank`-th nearest worker (0-based rank) to `query` during `slot`,
    /// excluding any worker whose id is in `excluded`.
    pub fn nearest_excluding(
        &self,
        slot: SlotIndex,
        query: &Location,
        excluded: &[WorkerId],
    ) -> Option<NearestWorker> {
        let grid = self.slots.get(slot)?;
        // Ask for enough candidates to skip the excluded ones.
        let want = excluded.len() + 1;
        let candidates = grid.nearest(query, want + excluded.len());
        candidates
            .into_iter()
            .find(|c| !excluded.contains(&c.worker))
    }

    /// Occupancy-aware fast path of [`WorkerIndex::nearest_excluding`]: the
    /// nearest worker to `query` during `slot` whose id is not in `excluded`.
    ///
    /// Takes the per-slot occupancy set of a ledger directly, so callers avoid
    /// materialising (and sorting) a `Vec<WorkerId>` per query and membership
    /// tests are `O(log n)` instead of a linear scan.  At most `excluded.len()`
    /// of any candidate list can be excluded, so fetching `excluded.len() + 1`
    /// nearest workers always suffices.
    pub fn nearest_excluding_set(
        &self,
        slot: SlotIndex,
        query: &Location,
        excluded: &BTreeSet<WorkerId>,
    ) -> Option<NearestWorker> {
        if excluded.is_empty() {
            return self.nearest(slot, query);
        }
        let grid = self.slots.get(slot)?;
        grid.nearest(query, excluded.len() + 1)
            .into_iter()
            .find(|c| !excluded.contains(&c.worker))
    }

    /// Brute-force nearest query, used as a correctness oracle in tests.
    pub fn nearest_brute_force(
        pool: &WorkerPool,
        slot: SlotIndex,
        query: &Location,
    ) -> Option<NearestWorker> {
        pool.available_at(slot)
            .map(|(w, loc)| NearestWorker {
                worker: w.id,
                location: loc,
                reliability: w.reliability,
                distance: query.distance(&loc),
            })
            .min_by(|a, b| {
                a.distance
                    .total_cmp(&b.distance)
                    .then(a.worker.cmp(&b.worker))
            })
    }
}

impl MutableSpatialIndex for WorkerIndex {
    fn insert_worker(&mut self, worker: &Worker) -> IndexMutation {
        let Some(entries) = self.registry.insert(worker, self.slots.len()) else {
            return IndexMutation::default();
        };
        let mut entries_touched = 0;
        for (slot, location) in entries {
            entries_touched += self.regrid_slot(slot, |workers| {
                let at = workers.partition_point(|w| w.worker < worker.id);
                workers.insert(
                    at,
                    IndexedWorker {
                        worker: worker.id,
                        location,
                        reliability: worker.reliability,
                    },
                );
            });
        }
        IndexMutation {
            applied: true,
            entries_touched,
            rebuild_equiv_entries: self.indexed_entries,
        }
    }

    fn remove_worker(&mut self, id: WorkerId) -> IndexMutation {
        let Some(reg) = self.registry.remove(id) else {
            return IndexMutation::default();
        };
        let mut entries_touched = 0;
        for &(slot, _) in reg.slots() {
            entries_touched += self.regrid_slot(slot, |workers| {
                workers.retain(|w| w.worker != id);
            });
        }
        IndexMutation {
            applied: true,
            entries_touched,
            rebuild_equiv_entries: self.indexed_entries,
        }
    }

    fn move_worker(&mut self, id: WorkerId, new_loc: Location) -> IndexMutation {
        let Some(old) = self.registry.relocate(id, new_loc) else {
            return IndexMutation::default();
        };
        let mut entries_touched = 0;
        for (slot, _) in old {
            entries_touched += self.regrid_slot(slot, |workers| {
                if let Some(w) = workers.iter_mut().find(|w| w.worker == id) {
                    w.location = new_loc;
                }
            });
        }
        IndexMutation {
            applied: true,
            entries_touched,
            rebuild_equiv_entries: self.indexed_entries,
        }
    }

    fn worker_profile(&self, id: WorkerId) -> Option<WorkerProfile> {
        self.registry.profile(id)
    }

    fn indexed_entries(&self) -> usize {
        self.indexed_entries
    }

    fn occupancy_imbalance_milli(&self) -> u64 {
        let mut max = 0usize;
        let mut non_empty = 0usize;
        let mut total = 0usize;
        for grid in &self.slots {
            let (m, n, t) = grid.cell_stats();
            max = max.max(m);
            non_empty += n;
            total += t;
        }
        imbalance_milli(max, non_empty, total)
    }
}

/// `max * 1000 / (total / buckets)` in integer arithmetic: the milli-scaled
/// max-over-mean bucket-occupancy ratio (0 when there are no buckets).
pub(crate) fn imbalance_milli(max: usize, buckets: usize, total: usize) -> u64 {
    if total == 0 {
        return 0;
    }
    (max as u64 * 1000 * buckets as u64) / total as u64
}

impl SpatialQuery for WorkerIndex {
    fn num_slots(&self) -> usize {
        WorkerIndex::num_slots(self)
    }

    fn total_workers(&self) -> usize {
        WorkerIndex::total_workers(self)
    }

    fn available_count(&self, slot: SlotIndex) -> usize {
        WorkerIndex::available_count(self, slot)
    }

    fn nearest(&self, slot: SlotIndex, query: &Location) -> Option<NearestWorker> {
        WorkerIndex::nearest(self, slot, query)
    }

    fn k_nearest(&self, slot: SlotIndex, query: &Location, count: usize) -> Vec<NearestWorker> {
        WorkerIndex::k_nearest(self, slot, query, count)
    }

    fn nearest_excluding_set(
        &self,
        slot: SlotIndex,
        query: &Location,
        excluded: &BTreeSet<WorkerId>,
    ) -> Option<NearestWorker> {
        WorkerIndex::nearest_excluding_set(self, slot, query, excluded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsc_core::{Worker, WorkerSlot};

    fn pool_of(points: &[(usize, f64, f64)]) -> WorkerPool {
        points
            .iter()
            .enumerate()
            .map(|(i, &(slot, x, y))| {
                Worker::new(
                    WorkerId(i as u32),
                    vec![WorkerSlot {
                        slot,
                        location: Location::new(x, y),
                    }],
                )
            })
            .collect()
    }

    #[test]
    fn nearest_on_empty_slot_is_none() {
        let pool = pool_of(&[(0, 1.0, 1.0)]);
        let index = WorkerIndex::build(&pool, 3, &Domain::square(10.0));
        assert!(index.nearest(1, &Location::new(0.0, 0.0)).is_none());
        assert_eq!(index.available_count(1), 0);
        assert_eq!(index.available_count(0), 1);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pool = pool_of(&[
            (0, 1.0, 1.0),
            (0, 5.0, 5.0),
            (0, 9.0, 2.0),
            (0, 2.0, 8.0),
            (0, 4.9, 5.1),
        ]);
        let domain = Domain::square(10.0);
        let index = WorkerIndex::build(&pool, 1, &domain);
        for q in [
            Location::new(0.0, 0.0),
            Location::new(5.0, 5.0),
            Location::new(10.0, 10.0),
            Location::new(7.0, 3.0),
        ] {
            let fast = index.nearest(0, &q).unwrap();
            let slow = WorkerIndex::nearest_brute_force(&pool, 0, &q).unwrap();
            assert_eq!(fast.worker, slow.worker, "query {q}");
            assert!((fast.distance - slow.distance).abs() < 1e-12);
        }
    }

    #[test]
    fn k_nearest_is_sorted_by_distance() {
        let pool = pool_of(&[(0, 1.0, 0.0), (0, 2.0, 0.0), (0, 5.0, 0.0), (0, 9.0, 0.0)]);
        let index = WorkerIndex::build(&pool, 1, &Domain::square(10.0));
        let res = index.k_nearest(0, &Location::new(0.0, 0.0), 3);
        assert_eq!(res.len(), 3);
        assert!(res[0].distance <= res[1].distance && res[1].distance <= res[2].distance);
        assert_eq!(res[0].worker, WorkerId(0));
        assert_eq!(res[2].worker, WorkerId(2));
    }

    #[test]
    fn k_nearest_caps_at_available_workers() {
        let pool = pool_of(&[(0, 1.0, 0.0), (0, 2.0, 0.0)]);
        let index = WorkerIndex::build(&pool, 1, &Domain::square(10.0));
        let res = index.k_nearest(0, &Location::new(0.0, 0.0), 10);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn nearest_excluding_skips_workers() {
        let pool = pool_of(&[(0, 1.0, 0.0), (0, 2.0, 0.0), (0, 3.0, 0.0)]);
        let index = WorkerIndex::build(&pool, 1, &Domain::square(10.0));
        let q = Location::new(0.0, 0.0);
        let first = index.nearest_excluding(0, &q, &[]).unwrap();
        assert_eq!(first.worker, WorkerId(0));
        let second = index.nearest_excluding(0, &q, &[WorkerId(0)]).unwrap();
        assert_eq!(second.worker, WorkerId(1));
        let third = index
            .nearest_excluding(0, &q, &[WorkerId(0), WorkerId(1)])
            .unwrap();
        assert_eq!(third.worker, WorkerId(2));
        assert!(index
            .nearest_excluding(0, &q, &[WorkerId(0), WorkerId(1), WorkerId(2)])
            .is_none());
    }

    #[test]
    fn nearest_excluding_set_agrees_with_the_slice_path() {
        let pool = pool_of(&[(0, 1.0, 0.0), (0, 2.0, 0.0), (0, 3.0, 0.0), (0, 4.0, 0.0)]);
        let index = WorkerIndex::build(&pool, 1, &Domain::square(10.0));
        let q = Location::new(0.0, 0.0);
        for excluded in [
            vec![],
            vec![WorkerId(0)],
            vec![WorkerId(0), WorkerId(1)],
            vec![WorkerId(1), WorkerId(3)],
            vec![WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(3)],
        ] {
            let set: BTreeSet<WorkerId> = excluded.iter().copied().collect();
            let via_slice = index.nearest_excluding(0, &q, &excluded);
            let via_set = index.nearest_excluding_set(0, &q, &set);
            assert_eq!(
                via_slice.map(|w| w.worker),
                via_set.map(|w| w.worker),
                "excluding {excluded:?}"
            );
        }
    }

    #[test]
    fn nearest_excluding_set_skips_ids_missing_from_the_slot() {
        // Excluded ids that are not available during the slot must not affect
        // the fetch bound.
        let pool = pool_of(&[(0, 1.0, 0.0), (0, 2.0, 0.0)]);
        let index = WorkerIndex::build(&pool, 1, &Domain::square(10.0));
        let set: BTreeSet<WorkerId> = [WorkerId(0), WorkerId(7), WorkerId(9)].into();
        let found = index
            .nearest_excluding_set(0, &Location::new(0.0, 0.0), &set)
            .unwrap();
        assert_eq!(found.worker, WorkerId(1));
    }

    #[test]
    fn worker_available_in_multiple_slots_is_indexed_in_each() {
        let worker = Worker::new(
            WorkerId(0),
            vec![
                WorkerSlot {
                    slot: 0,
                    location: Location::new(1.0, 1.0),
                },
                WorkerSlot {
                    slot: 2,
                    location: Location::new(8.0, 8.0),
                },
            ],
        );
        let pool = WorkerPool::new(vec![worker]);
        let index = WorkerIndex::build(&pool, 3, &Domain::square(10.0));
        assert_eq!(index.available_count(0), 1);
        assert_eq!(index.available_count(1), 0);
        assert_eq!(index.available_count(2), 1);
        let near = index.nearest(2, &Location::new(9.0, 9.0)).unwrap();
        assert_eq!(near.location, Location::new(8.0, 8.0));
    }

    #[test]
    fn availability_beyond_horizon_is_ignored() {
        let worker = Worker::new(
            WorkerId(0),
            vec![WorkerSlot {
                slot: 10,
                location: Location::new(1.0, 1.0),
            }],
        );
        let pool = WorkerPool::new(vec![worker]);
        let index = WorkerIndex::build(&pool, 5, &Domain::square(10.0));
        assert_eq!(index.num_slots(), 5);
        assert_eq!(index.available_count(4), 0);
    }

    #[test]
    fn grid_handles_many_random_workers() {
        // Deterministic pseudo-random spread; compare against brute force.
        let mut pts = Vec::new();
        let mut state = 42u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = ((state >> 20) % 1000) as f64 / 10.0;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let y = ((state >> 20) % 1000) as f64 / 10.0;
            pts.push((0usize, x, y));
        }
        let pool = pool_of(&pts);
        let domain = Domain::square(100.0);
        let index = WorkerIndex::build(&pool, 1, &domain);
        for q in [
            Location::new(0.0, 0.0),
            Location::new(50.0, 50.0),
            Location::new(99.0, 1.0),
            Location::new(33.3, 66.6),
        ] {
            let fast = index.nearest(0, &q).unwrap();
            let slow = WorkerIndex::nearest_brute_force(&pool, 0, &q).unwrap();
            assert!((fast.distance - slow.distance).abs() < 1e-9, "query {q}");
        }
    }
}
