//! Sharded spatial index: the domain partitioned into a grid of spatial
//! tiles (optionally crossed with a time-range split), each shard owning its
//! own dense per-slot worker buckets — each bucket itself a tile-interior
//! `SlotGrid` (the same grid the dense index uses per slot), so single-tile
//! scans prune at cell level instead of walking a flat vector.
//!
//! The dense [`crate::WorkerIndex`] is one grid over the whole domain, so every
//! parallel framework funnels its queries (and, in the assignment layer, its
//! occupancy bookkeeping) through one shared structure.
//! [`ShardedWorkerIndex`] splits that structure along spatial tiles: a thin
//! router answers [`SpatialQuery`] queries by probing the query point's tile
//! and expanding to neighbour rings **only while a closer worker could still
//! exist across a tile boundary**, so shards stay independently owned — the
//! property the concurrent assignment engine's per-shard ledgers and caches
//! build on (see `tcsc-assign::engine::concurrent`).
//!
//! # Neighbour-ring expansion bound
//!
//! Rings are sets of tiles at the same Chebyshev distance from the query's
//! tile.  After scanning rings `0..=r`, the unscanned tiles all lie outside
//! the scanned tile rectangle, so any worker they hold is at least as far
//! from the query point as the nearest edge of that rectangle (sides where
//! the rectangle already touches the grid border cannot hide tiles and are
//! ignored).  A search therefore expands to the next ring only while its
//! current answer is not strictly closer than the rectangle edge — i.e.
//! only while a closer worker could still exist across a tile boundary.
//!
//! # Bit-identical answers
//!
//! Every query resolves distance ties by ascending worker id.  The dense
//! index does the same (its per-slot candidate lists are stored in worker-id
//! order and sorted by `(distance, position)`), so the two indexes return
//! identical results — same workers, same order, same `f64` distances — on
//! every query.  `tests/sharded_properties.rs` locks this in across seeded
//! domains, tile-boundary workers and empty shards.

use std::cell::RefCell;
use std::collections::BTreeSet;

use tcsc_core::{Domain, Location, SlotIndex, Worker, WorkerId, WorkerPool};

use crate::spatial::{
    imbalance_milli, IndexMutation, IndexedWorker, MutableSpatialIndex, NearestWorker, SlotGrid,
    SpatialQuery, WorkerProfile, WorkerRegistry,
};

thread_local! {
    /// Per-thread scratch of the sharded k-NN path, reused across queries:
    /// the cross-tile merge list and the tile-interior working buffer.
    /// `BENCH_fig9.json` showed the per-call allocations (one `Vec` per tile
    /// per ring, plus the merge vector) making the sharded query slower than
    /// the dense one at small scales; reusing the buffers removes every
    /// transient allocation except the exactly-sized result.
    static KNN_SCRATCH: RefCell<KnnScratch> = RefCell::new(KnnScratch::default());
}

/// The reusable buffers of one thread's k-NN queries.
#[derive(Default)]
struct KnnScratch {
    /// Cross-tile candidate merge list (`found` of the ring expansion).
    merged: Vec<NearestWorker>,
    /// Tile-interior `(distance, index)` working buffer.
    tile: Vec<(f64, u32)>,
    /// Ring tiles ordered by ascending rectangle distance (the mid-ring
    /// early-stop order): `(min distance, tx, ty)`.
    ring: Vec<(f64, u32, u32)>,
}

/// Shard-grid layout: how many spatial tiles per axis and how many contiguous
/// time ranges the slot axis is split into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardGridConfig {
    /// Number of tiles along the x axis (min 1).
    pub tiles_x: usize,
    /// Number of tiles along the y axis (min 1).
    pub tiles_y: usize,
    /// Number of contiguous time ranges the slot axis is split into (min 1;
    /// 1 means no time split).
    pub time_splits: usize,
}

impl ShardGridConfig {
    /// A `tiles_x x tiles_y` spatial grid without a time split.
    pub fn new(tiles_x: usize, tiles_y: usize) -> Self {
        Self {
            tiles_x: tiles_x.max(1),
            tiles_y: tiles_y.max(1),
            time_splits: 1,
        }
    }

    /// Adds a time-range split: shards own `ceil(num_slots / time_splits)`
    /// consecutive slots each.
    pub fn with_time_splits(mut self, time_splits: usize) -> Self {
        self.time_splits = time_splits.max(1);
        self
    }

    /// Number of spatial tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles_x * self.tiles_y
    }
}

impl Default for ShardGridConfig {
    /// An 8×8 spatial grid without a time split.
    fn default() -> Self {
        Self::new(8, 8)
    }
}

/// One shard: the per-slot worker buckets of a single (tile, time-range)
/// cell.  Each bucket is a dense [`SlotGrid`] over the tile's rectangle, so
/// scanning a tile prunes at cell level instead of walking a flat vector;
/// grids store workers in worker-id order (the pool iteration order), which
/// is what makes tie-breaking identical to the dense index.
#[derive(Debug, Clone, Default)]
struct Shard {
    /// `slots[local_slot]` holds the tile-interior grid over the workers of
    /// this tile available during `range_start + local_slot`.
    slots: Vec<Option<SlotGrid>>,
    /// Total number of indexed (worker, slot) entries.
    entries: usize,
}

/// Sharded per-slot spatial index over a worker pool: a grid of spatial-tile
/// shards behind a ring-expanding router.  Answers the same [`SpatialQuery`]
/// queries as the dense [`crate::WorkerIndex`], bit-identically.
#[derive(Debug, Clone)]
pub struct ShardedWorkerIndex {
    shards: Vec<Shard>,
    config: ShardGridConfig,
    origin: Location,
    tile_w: f64,
    tile_h: f64,
    /// Slots per time range (`ceil(num_slots / time_splits)`).
    slots_per_split: usize,
    num_slots: usize,
    /// Per-slot availability counts (across all shards).
    available: Vec<usize>,
    /// Who is indexed where: the lookup that makes remove/move tile-local.
    registry: WorkerRegistry,
    /// Per-spatial-tile mutation counters: `tile_versions[tile]` bumps every
    /// time one of the tile's buckets is spliced.  Pure-geometry bounds
    /// ([`ShardedWorkerIndex::tile_interior_bound`], the k-th-distance tile
    /// pruning) never change under mutation — the versions let cache layers
    /// detect *content* churn per tile without diffing buckets.
    tile_versions: Vec<u64>,
    /// Global mutation counter (total bucket splices over the index's life).
    version: u64,
    /// Total indexed `(worker, slot)` entries.
    indexed_entries: usize,
}

impl ShardedWorkerIndex {
    /// Builds the sharded index for the given pool over `num_slots` time
    /// slots within `domain`, using the given shard-grid layout.
    pub fn build(
        pool: &WorkerPool,
        num_slots: usize,
        domain: &Domain,
        config: ShardGridConfig,
    ) -> Self {
        let config = ShardGridConfig {
            tiles_x: config.tiles_x.max(1),
            tiles_y: config.tiles_y.max(1),
            time_splits: config.time_splits.max(1),
        };
        let tile_w = (domain.width() / config.tiles_x as f64).max(f64::MIN_POSITIVE);
        let tile_h = (domain.height() / config.tiles_y as f64).max(f64::MIN_POSITIVE);
        let slots_per_split = num_slots.div_ceil(config.time_splits).max(1);
        let num_shards = config.num_tiles() * config.time_splits;
        let mut buckets: Vec<Vec<Vec<IndexedWorker>>> = vec![Vec::new(); num_shards];
        let mut available = vec![0usize; num_slots];
        let mut index = Self {
            shards: Vec::new(),
            config,
            origin: domain.min,
            tile_w,
            tile_h,
            slots_per_split,
            num_slots,
            available: Vec::new(),
            registry: WorkerRegistry::from_pool(pool, num_slots),
            tile_versions: vec![0; config.num_tiles()],
            version: 0,
            indexed_entries: 0,
        };
        // Pool iteration is worker-id ascending, so every per-slot bucket
        // ends up in id order — the tie-break order of the dense index.
        for worker in pool.workers() {
            for ws in worker.availability() {
                if ws.slot >= num_slots {
                    continue;
                }
                let shard_id = index.shard_of(ws.slot, &ws.location);
                let bucket = &mut buckets[shard_id];
                let range_start = (ws.slot / slots_per_split) * slots_per_split;
                let local = ws.slot - range_start;
                if bucket.len() <= local {
                    bucket.resize(local + 1, Vec::new());
                }
                bucket[local].push(IndexedWorker {
                    worker: worker.id,
                    location: ws.location,
                    reliability: worker.reliability,
                });
                available[ws.slot] += 1;
            }
        }
        // Turn every non-empty bucket into a dense grid over its tile's
        // rectangle, so single-tile scans recover cell-level pruning.  (Out-of
        // -domain workers clamp into border tiles; `SlotGrid` clamps their
        // cell coordinates the same way, so they are searchable regardless.)
        index.shards = buckets
            .into_iter()
            .enumerate()
            .map(|(shard_id, bucket)| {
                let tile = shard_id % index.config.num_tiles();
                let tile_domain = index.tile_domain(tile);
                let entries = bucket.iter().map(Vec::len).sum();
                Shard {
                    slots: bucket
                        .into_iter()
                        .map(|workers| {
                            (!workers.is_empty()).then(|| SlotGrid::build(workers, &tile_domain))
                        })
                        .collect(),
                    entries,
                }
            })
            .collect();
        index.indexed_entries = index.shards.iter().map(|s| s.entries).sum();
        index.available = available;
        index
    }

    /// The rectangle of one spatial tile (by tile id within the grid).
    fn tile_domain(&self, tile: usize) -> Domain {
        let tx = tile % self.config.tiles_x;
        let ty = tile / self.config.tiles_x;
        let min = Location::new(
            self.origin.x + tx as f64 * self.tile_w,
            self.origin.y + ty as f64 * self.tile_h,
        );
        Domain::new(min, Location::new(min.x + self.tile_w, min.y + self.tile_h))
    }

    /// The shard layout.
    pub fn config(&self) -> &ShardGridConfig {
        &self.config
    }

    /// Total number of shards (`tiles_x * tiles_y * time_splits`).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of spatial shards (tiles), ignoring the time split.
    pub fn num_spatial_shards(&self) -> usize {
        self.config.num_tiles()
    }

    /// Clamps one axis of a location into the tile grid: the **border-clamp
    /// invariant**.  Out-of-domain coordinates route to the nearest border
    /// tile (negative offsets to tile 0, offsets at or beyond the domain edge
    /// to the last tile).  This is the *single* routing rule of the index —
    /// [`ShardedWorkerIndex::build`] and every [`MutableSpatialIndex`] op
    /// place workers through [`ShardedWorkerIndex::tile_of`], which calls
    /// this helper for both axes — so a worker moved out of the domain lands
    /// in exactly the tile a from-scratch rebuild would place it in
    /// (regression-locked in `tests/sharded_properties.rs`).  The query-side
    /// consequence: border tiles are unbounded on their grid-edge sides, so
    /// [`ShardedWorkerIndex::tile_min_distance`] must not (and does not)
    /// bound them there.
    fn clamp_tile_axis(offset: f64, tile_extent: f64, tiles: usize) -> usize {
        let tile = (offset / tile_extent).floor().max(0.0) as usize;
        tile.min(tiles - 1)
    }

    /// The tile coordinates of a location (clamped into the grid per the
    /// border-clamp invariant of `clamp_tile_axis`, so out-of-domain points
    /// route to the nearest boundary tile).
    pub fn tile_of(&self, loc: &Location) -> (usize, usize) {
        (
            Self::clamp_tile_axis(loc.x - self.origin.x, self.tile_w, self.config.tiles_x),
            Self::clamp_tile_axis(loc.y - self.origin.y, self.tile_h, self.config.tiles_y),
        )
    }

    /// The spatial shard (tile) id owning a location: the routing function
    /// shared by this index and the concurrent engine's per-shard ledgers and
    /// caches.
    pub fn spatial_shard_of(&self, loc: &Location) -> usize {
        let (tx, ty) = self.tile_of(loc);
        ty * self.config.tiles_x + tx
    }

    /// The shard id owning `(slot, location)`.
    pub fn shard_of(&self, slot: SlotIndex, loc: &Location) -> usize {
        let time_range = slot / self.slots_per_split;
        time_range * self.config.num_tiles() + self.spatial_shard_of(loc)
    }

    /// Number of indexed (worker, slot) entries a shard owns (zero for empty
    /// shards).
    pub fn shard_entries(&self, shard: usize) -> usize {
        self.shards.get(shard).map_or(0, |s| s.entries)
    }

    /// The tile-interior grid over the workers of one tile available during
    /// `slot` (`None` when the bucket is empty).
    fn bucket(&self, slot: SlotIndex, tx: usize, ty: usize) -> Option<&SlotGrid> {
        let time_range = slot / self.slots_per_split;
        let shard =
            &self.shards[time_range * self.config.num_tiles() + ty * self.config.tiles_x + tx];
        let local = slot - time_range * self.slots_per_split;
        shard.slots.get(local).and_then(Option::as_ref)
    }

    /// Splices the bucket owning `(slot, loc)` — routed through the same
    /// [`ShardedWorkerIndex::tile_of`] border clamp as
    /// [`ShardedWorkerIndex::build`] — and rebuilds its tile-interior grid
    /// from the edited, id-ordered worker list: the tile-local unit of
    /// mutation, `O(bucket)` instead of `O(workers)`.  Rebuilding the bucket
    /// grid whole (rather than editing cells in place) is what keeps the
    /// mutated index bit-identical to a fresh build: grid geometry depends on
    /// the bucket's worker count.  Returns the bucket length after the edit.
    fn splice_bucket(
        &mut self,
        slot: SlotIndex,
        loc: &Location,
        edit: impl FnOnce(&mut Vec<IndexedWorker>),
    ) -> usize {
        let shard_id = self.shard_of(slot, loc);
        let tile = shard_id % self.config.num_tiles();
        let tile_domain = self.tile_domain(tile);
        let range_start = (slot / self.slots_per_split) * self.slots_per_split;
        let local = slot - range_start;
        let (before, after) = {
            let shard = &mut self.shards[shard_id];
            if shard.slots.len() <= local {
                shard.slots.resize_with(local + 1, || None);
            }
            let mut workers = shard.slots[local]
                .take()
                .map(|mut grid| grid.take_workers())
                .unwrap_or_default();
            let before = workers.len();
            edit(&mut workers);
            let after = workers.len();
            shard.entries = shard.entries + after - before;
            shard.slots[local] =
                (!workers.is_empty()).then(|| SlotGrid::build(workers, &tile_domain));
            (before, after)
        };
        self.available[slot] = self.available[slot] + after - before;
        self.indexed_entries = self.indexed_entries + after - before;
        self.tile_versions[tile] += 1;
        self.version += 1;
        after
    }

    /// The mutation counter of one spatial tile: bumps on every splice of
    /// one of the tile's buckets (any time range).  See the `tile_versions`
    /// field for why the geometric pruning bounds need no such counter.
    pub fn tile_version(&self, tile: usize) -> u64 {
        self.tile_versions.get(tile).copied().unwrap_or(0)
    }

    /// Global mutation counter: total bucket splices over the index's life
    /// (0 for a freshly built index).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Lower bound on the distance from `query` to any worker in a tile NOT
    /// yet scanned after rings `0..=ring` around `(qx, qy)`: the distance
    /// from the query point to the edge of the scanned tile rectangle.
    /// Sides where the rectangle already covers the whole grid cannot hide
    /// unscanned tiles and contribute nothing (`INFINITY`).
    ///
    /// A search may stop once its current answer is strictly below this
    /// bound; at exact equality one more ring is scanned so that a worker
    /// sitting precisely on the rectangle edge can still win a tie on
    /// worker id.
    fn unscanned_bound(&self, query: &Location, qx: usize, qy: usize, ring: usize) -> f64 {
        let mut bound = f64::INFINITY;
        if qx > ring {
            bound = bound.min(query.x - (self.origin.x + (qx - ring) as f64 * self.tile_w));
        }
        if qx + ring + 1 < self.config.tiles_x {
            bound = bound.min(self.origin.x + (qx + ring + 1) as f64 * self.tile_w - query.x);
        }
        if qy > ring {
            bound = bound.min(query.y - (self.origin.y + (qy - ring) as f64 * self.tile_h));
        }
        if qy + ring + 1 < self.config.tiles_y {
            bound = bound.min(self.origin.y + (qy + ring + 1) as f64 * self.tile_h - query.y);
        }
        bound
    }

    /// Lower bound on the Euclidean distance from `query` to any worker a
    /// tile can hold.  Border tiles are unbounded on their grid-edge sides:
    /// out-of-domain workers clamp into them ([`ShardedWorkerIndex::tile_of`])
    /// while lying *outside* the tile's rectangle, so only interior tile
    /// boundaries may contribute to the bound.  The result is additionally
    /// relaxed by a tiny factor so that a worker placed within float-rounding
    /// distance of a tile boundary (whose `tile_of` division may round it
    /// across) can never be excluded by ULP noise — the skip comparison is
    /// strict, so an exact k-th-distance tie candidate is always scanned.
    fn tile_min_distance(&self, query: &Location, tx: usize, ty: usize) -> f64 {
        let mut dx = 0.0f64;
        if tx > 0 {
            dx = dx.max(self.origin.x + tx as f64 * self.tile_w - query.x);
        }
        if tx + 1 < self.config.tiles_x {
            dx = dx.max(query.x - (self.origin.x + (tx + 1) as f64 * self.tile_w));
        }
        let mut dy = 0.0f64;
        if ty > 0 {
            dy = dy.max(self.origin.y + ty as f64 * self.tile_h - query.y);
        }
        if ty + 1 < self.config.tiles_y {
            dy = dy.max(query.y - (self.origin.y + (ty + 1) as f64 * self.tile_h));
        }
        (dx * dx + dy * dy).sqrt() * (1.0 - 1e-9)
    }

    /// Distance from `query` to the nearest **interior** side of its home
    /// tile: a strict lower bound on the distance to any worker stored in a
    /// *different* spatial shard.
    ///
    /// Grid-border sides are ignored (`INFINITY` when the home tile is the
    /// whole grid): out-of-domain workers clamp *into* border tiles
    /// ([`ShardedWorkerIndex::tile_of`]), so a worker beyond a grid border is
    /// stored in this tile's own bucket, never hidden across it.  Any worker
    /// whose bucket is another tile therefore lies outside the home tile's
    /// rectangle on at least one interior side, at Euclidean distance at
    /// least this bound.  Out-of-domain queries yield a non-positive bound —
    /// no interior guarantee.
    ///
    /// This is the concurrent engine's disjoint-region router check: a task
    /// whose candidate distances all fall strictly below (a slightly shrunk
    /// copy of) this bound provably resolves every nearest-worker query
    /// inside its home tile, so its commits can proceed in parallel with
    /// other tiles' without consulting any shared state.
    pub fn tile_interior_bound(&self, query: &Location) -> f64 {
        let (tx, ty) = self.tile_of(query);
        let mut bound = f64::INFINITY;
        if tx > 0 {
            bound = bound.min(query.x - (self.origin.x + tx as f64 * self.tile_w));
        }
        if tx + 1 < self.config.tiles_x {
            bound = bound.min(self.origin.x + (tx + 1) as f64 * self.tile_w - query.x);
        }
        if ty > 0 {
            bound = bound.min(query.y - (self.origin.y + ty as f64 * self.tile_h));
        }
        if ty + 1 < self.config.tiles_y {
            bound = bound.min(self.origin.y + (ty + 1) as f64 * self.tile_h - query.y);
        }
        bound
    }

    /// The nearest non-excluded worker to `query` during `slot` **within the
    /// query's home tile only** (cell-level pruned, ties by ascending worker
    /// id).  Agrees with the global
    /// [`ShardedWorkerIndex::nearest_excluding_with`] whenever the returned
    /// distance is strictly below [`ShardedWorkerIndex::tile_interior_bound`]
    /// — every other tile's workers are at least that far away.  The
    /// region-local search of the concurrent engine's disjoint-region drains.
    pub fn nearest_in_home_tile(
        &self,
        slot: SlotIndex,
        query: &Location,
        mut excluded: impl FnMut(WorkerId) -> bool,
    ) -> Option<NearestWorker> {
        if slot >= self.num_slots || self.available[slot] == 0 {
            return None;
        }
        let (tx, ty) = self.tile_of(query);
        let grid = self.bucket(slot, tx, ty)?;
        grid.nearest_filtered(query, &mut excluded)
            .map(|(distance, w)| NearestWorker {
                worker: w.worker,
                location: w.location,
                reliability: w.reliability,
                distance,
            })
    }

    /// Visits the tiles whose exact Chebyshev distance from `(qx, qy)` equals
    /// `ring`, so every tile is visited exactly once across all rings (no
    /// border re-visits, no duplicate candidates to trip the stop bound).
    fn for_ring_tiles(
        &self,
        qx: usize,
        qy: usize,
        ring: usize,
        mut visit: impl FnMut(usize, usize),
    ) {
        let x_lo = qx.saturating_sub(ring);
        let x_hi = (qx + ring).min(self.config.tiles_x - 1);
        let y_lo = qy.saturating_sub(ring);
        let y_hi = (qy + ring).min(self.config.tiles_y - 1);
        for ty in y_lo..=y_hi {
            for tx in x_lo..=x_hi {
                if tx.abs_diff(qx).max(ty.abs_diff(qy)) != ring {
                    continue;
                }
                visit(tx, ty);
            }
        }
    }

    /// Fills `out` with one ring's tiles ordered by ascending
    /// [`ShardedWorkerIndex::tile_min_distance`] (ties in the row-major visit
    /// order, `(ty, tx)`): the mid-ring early-stop order.  Once the running
    /// bound undercuts a tile's rectangle distance, every later tile of the
    /// ring is at least as far, so the ring scan can stop mid-ring instead of
    /// testing each remaining tile individually — the skip *predicate* is
    /// unchanged, so the set of scanned tiles (and hence every answer) stays
    /// bit-identical.
    fn sorted_ring_tiles(
        &self,
        query: &Location,
        qx: usize,
        qy: usize,
        ring: usize,
        out: &mut Vec<(f64, u32, u32)>,
    ) {
        out.clear();
        self.for_ring_tiles(qx, qy, ring, |tx, ty| {
            out.push((self.tile_min_distance(query, tx, ty), tx as u32, ty as u32));
        });
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)).then(a.1.cmp(&b.1)));
    }

    /// The `count` nearest available workers to `query` during `slot`, sorted
    /// by `(distance, worker id)` — bit-identical to the dense index.
    pub fn k_nearest(&self, slot: SlotIndex, query: &Location, count: usize) -> Vec<NearestWorker> {
        if slot >= self.num_slots || count == 0 || self.available[slot] == 0 {
            return Vec::new();
        }
        let (qx, qy) = self.tile_of(query);
        // The ring frontier's merge list and the per-tile top-k buffer are
        // per-thread scratch (see `KNN_SCRATCH`); only the final, exactly
        // sized result is allocated.
        KNN_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            let found = &mut scratch.merged;
            let tile_buf = &mut scratch.tile;
            let ring_buf = &mut scratch.ring;
            found.clear();
            let max_ring = self.config.tiles_x.max(self.config.tiles_y);
            // The count-th best distance seen so far (from the previous
            // ring's sort): a tile whose rectangle lies strictly beyond it
            // cannot contribute to the top-`count` and is skipped whole.
            let mut kth = f64::INFINITY;
            for ring in 0..=max_ring {
                // Ascending-rectangle-distance visit: the first tile beyond
                // the k-th bound ends the whole ring (same skip predicate as
                // testing each tile, so the scanned set is unchanged).
                self.sorted_ring_tiles(query, qx, qy, ring, ring_buf);
                for &(min_dist, tx, ty) in ring_buf.iter() {
                    if min_dist > kth {
                        break;
                    }
                    if let Some(grid) = self.bucket(slot, tx as usize, ty as usize) {
                        // The tile's own top-`count` suffices: a worker beaten
                        // by `count` closer workers within its tile can never
                        // make the global top-`count`, so dropping it here
                        // leaves the k-th best distance — and the stop bound —
                        // unchanged.
                        grid.nearest_append(query, count, tile_buf, found);
                    }
                }
                // Stop once the count-th best answer is provably closer than
                // anything an unscanned tile could hold.
                if found.len() >= count {
                    found.sort_by(|a, b| {
                        a.distance
                            .total_cmp(&b.distance)
                            .then(a.worker.cmp(&b.worker))
                    });
                    kth = found[count - 1].distance;
                    if kth < self.unscanned_bound(query, qx, qy, ring) {
                        break;
                    }
                }
            }
            found.sort_by(|a, b| {
                a.distance
                    .total_cmp(&b.distance)
                    .then(a.worker.cmp(&b.worker))
            });
            found.truncate(count);
            found.clone()
        })
    }

    /// The nearest available worker to `query` during `slot`.
    pub fn nearest(&self, slot: SlotIndex, query: &Location) -> Option<NearestWorker> {
        self.k_nearest(slot, query, 1).into_iter().next()
    }

    /// The nearest worker to `query` during `slot` whose id is not in
    /// `excluded` (same overfetch bound as the dense index: at most
    /// `excluded.len()` candidates can be skipped).
    pub fn nearest_excluding_set(
        &self,
        slot: SlotIndex,
        query: &Location,
        excluded: &BTreeSet<WorkerId>,
    ) -> Option<NearestWorker> {
        if excluded.is_empty() {
            return self.nearest(slot, query);
        }
        self.k_nearest(slot, query, excluded.len() + 1)
            .into_iter()
            .find(|c| !excluded.contains(&c.worker))
    }

    /// The nearest worker to `query` during `slot` for which
    /// `occupied(spatial_shard, worker)` is false.
    ///
    /// This is the shard-local occupancy fast path of the concurrent
    /// assignment engine: a worker indexed in tile `t` has its occupancy
    /// recorded in ledger shard `t` (both routed through
    /// [`ShardedWorkerIndex::spatial_shard_of`] on the worker's slot
    /// location), so the filter only ever consults the ledger shard of the
    /// tile currently being probed.  Returns the same worker as
    /// [`ShardedWorkerIndex::nearest_excluding_set`] over the equivalent
    /// global exclusion set: the minimum over non-excluded workers of
    /// `(distance, worker id)`.
    pub fn nearest_excluding_with(
        &self,
        slot: SlotIndex,
        query: &Location,
        mut occupied: impl FnMut(usize, WorkerId) -> bool,
    ) -> Option<NearestWorker> {
        if slot >= self.num_slots || self.available[slot] == 0 {
            return None;
        }
        let (qx, qy) = self.tile_of(query);
        let mut best: Option<(f64, IndexedWorker)> = None;
        let max_ring = self.config.tiles_x.max(self.config.tiles_y);
        // The sorted ring buffer is thread-local scratch shared with
        // `k_nearest`; `occupied` callbacks must not re-enter this index's
        // query methods (in-tree callers only consult ledger shards).
        KNN_SCRATCH.with(|scratch| {
            let ring_buf = &mut scratch.borrow_mut().ring;
            for ring in 0..=max_ring {
                // Mid-ring early stop: tiles in ascending rectangle distance;
                // once the current answer undercuts a tile's rectangle, every
                // remaining tile of the ring is at least as far.  A skipped
                // tile's workers are all strictly farther than the answer
                // (the relaxed rectangle bound still under-estimates their
                // distance), so they cannot win even a worker-id tie.
                self.sorted_ring_tiles(query, qx, qy, ring, ring_buf);
                for &(min_dist, tx, ty) in ring_buf.iter() {
                    if let Some((bd, _)) = &best {
                        if min_dist > *bd {
                            break;
                        }
                    }
                    let (tx, ty) = (tx as usize, ty as usize);
                    let shard = ty * self.config.tiles_x + tx;
                    let Some(grid) = self.bucket(slot, tx, ty) else {
                        continue;
                    };
                    // Per-tile filtered search: the grid prunes at cell level
                    // and only ever consults the occupancy of this tile's
                    // shard.
                    let Some((d, w)) = grid.nearest_filtered(query, |id| occupied(shard, id))
                    else {
                        continue;
                    };
                    let better = match &best {
                        None => true,
                        Some((bd, bw)) => d < *bd || (d == *bd && w.worker < bw.worker),
                    };
                    if better {
                        best = Some((d, w));
                    }
                }
                if let Some((bd, _)) = &best {
                    if *bd < self.unscanned_bound(query, qx, qy, ring) {
                        break;
                    }
                }
            }
        });
        best.map(|(d, w)| NearestWorker {
            worker: w.worker,
            location: w.location,
            reliability: w.reliability,
            distance: d,
        })
    }
}

impl MutableSpatialIndex for ShardedWorkerIndex {
    fn insert_worker(&mut self, worker: &Worker) -> IndexMutation {
        let Some(entries) = self.registry.insert(worker, self.num_slots) else {
            return IndexMutation::default();
        };
        let mut entries_touched = 0;
        for (slot, location) in entries {
            entries_touched += self.splice_bucket(slot, &location, |workers| {
                let at = workers.partition_point(|w| w.worker < worker.id);
                workers.insert(
                    at,
                    IndexedWorker {
                        worker: worker.id,
                        location,
                        reliability: worker.reliability,
                    },
                );
            });
        }
        IndexMutation {
            applied: true,
            entries_touched,
            rebuild_equiv_entries: self.indexed_entries,
        }
    }

    fn remove_worker(&mut self, id: WorkerId) -> IndexMutation {
        let Some(reg) = self.registry.remove(id) else {
            return IndexMutation::default();
        };
        let mut entries_touched = 0;
        for &(slot, loc) in reg.slots() {
            entries_touched += self.splice_bucket(slot, &loc, |workers| {
                workers.retain(|w| w.worker != id);
            });
        }
        IndexMutation {
            applied: true,
            entries_touched,
            rebuild_equiv_entries: self.indexed_entries,
        }
    }

    fn move_worker(&mut self, id: WorkerId, new_loc: Location) -> IndexMutation {
        let Some(reliability) = self.registry.get(id).map(|r| r.reliability()) else {
            return IndexMutation::default();
        };
        let old = self
            .registry
            .relocate(id, new_loc)
            .expect("registry entry checked above");
        let mut entries_touched = 0;
        for (slot, old_loc) in old {
            // Same bucket (the common case for waypoint drift): one splice
            // updates the location in place.  Cross-tile: remove from the old
            // bucket, id-ordered insert into the new one — both routed
            // through the shared border clamp, so an out-of-domain target
            // lands exactly where a rebuild would put it.
            if self.shard_of(slot, &old_loc) == self.shard_of(slot, &new_loc) {
                entries_touched += self.splice_bucket(slot, &old_loc, |workers| {
                    if let Some(w) = workers.iter_mut().find(|w| w.worker == id) {
                        w.location = new_loc;
                    }
                });
            } else {
                entries_touched += self.splice_bucket(slot, &old_loc, |workers| {
                    workers.retain(|w| w.worker != id);
                });
                entries_touched += self.splice_bucket(slot, &new_loc, |workers| {
                    let at = workers.partition_point(|w| w.worker < id);
                    workers.insert(
                        at,
                        IndexedWorker {
                            worker: id,
                            location: new_loc,
                            reliability,
                        },
                    );
                });
            }
        }
        IndexMutation {
            applied: true,
            entries_touched,
            rebuild_equiv_entries: self.indexed_entries,
        }
    }

    fn worker_profile(&self, id: WorkerId) -> Option<WorkerProfile> {
        self.registry.profile(id)
    }

    fn indexed_entries(&self) -> usize {
        self.indexed_entries
    }

    fn occupancy_imbalance_milli(&self) -> u64 {
        let mut max = 0usize;
        let mut buckets = 0usize;
        let mut total = 0usize;
        for shard in &self.shards {
            for grid in shard.slots.iter().flatten() {
                let len = grid.workers().len();
                max = max.max(len);
                buckets += 1;
                total += len;
            }
        }
        imbalance_milli(max, buckets, total)
    }
}

impl SpatialQuery for ShardedWorkerIndex {
    fn num_slots(&self) -> usize {
        self.num_slots
    }

    fn total_workers(&self) -> usize {
        self.registry.len()
    }

    fn available_count(&self, slot: SlotIndex) -> usize {
        self.available.get(slot).copied().unwrap_or(0)
    }

    fn nearest(&self, slot: SlotIndex, query: &Location) -> Option<NearestWorker> {
        ShardedWorkerIndex::nearest(self, slot, query)
    }

    fn k_nearest(&self, slot: SlotIndex, query: &Location, count: usize) -> Vec<NearestWorker> {
        ShardedWorkerIndex::k_nearest(self, slot, query, count)
    }

    fn nearest_excluding_set(
        &self,
        slot: SlotIndex,
        query: &Location,
        excluded: &BTreeSet<WorkerId>,
    ) -> Option<NearestWorker> {
        ShardedWorkerIndex::nearest_excluding_set(self, slot, query, excluded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsc_core::{Worker, WorkerSlot};

    fn pool_of(points: &[(usize, f64, f64)]) -> WorkerPool {
        points
            .iter()
            .enumerate()
            .map(|(i, &(slot, x, y))| {
                Worker::new(
                    WorkerId(i as u32),
                    vec![WorkerSlot {
                        slot,
                        location: Location::new(x, y),
                    }],
                )
            })
            .collect()
    }

    #[test]
    fn routes_locations_to_tiles() {
        let pool = pool_of(&[(0, 1.0, 1.0)]);
        let index =
            ShardedWorkerIndex::build(&pool, 1, &Domain::square(10.0), ShardGridConfig::new(2, 2));
        assert_eq!(index.num_shards(), 4);
        assert_eq!(index.tile_of(&Location::new(1.0, 1.0)), (0, 0));
        assert_eq!(index.tile_of(&Location::new(9.0, 1.0)), (1, 0));
        assert_eq!(index.tile_of(&Location::new(1.0, 9.0)), (0, 1));
        // The grid boundary itself belongs to the upper tile; the domain's
        // outer edge clamps into the last tile.
        assert_eq!(index.tile_of(&Location::new(5.0, 5.0)), (1, 1));
        assert_eq!(index.tile_of(&Location::new(10.0, 10.0)), (1, 1));
    }

    #[test]
    fn empty_shards_are_skipped() {
        // All workers cluster in one tile; queries from any tile still find
        // them.
        let pool = pool_of(&[(0, 1.0, 1.0), (0, 2.0, 2.0), (0, 1.5, 0.5)]);
        let index =
            ShardedWorkerIndex::build(&pool, 1, &Domain::square(100.0), ShardGridConfig::new(8, 8));
        let populated: usize = (0..index.num_shards())
            .filter(|&s| index.shard_entries(s) > 0)
            .count();
        assert_eq!(populated, 1);
        let far = index.nearest(0, &Location::new(99.0, 99.0)).unwrap();
        assert_eq!(far.worker, WorkerId(1));
        assert_eq!(index.k_nearest(0, &Location::new(99.0, 99.0), 5).len(), 3);
    }

    #[test]
    fn time_splits_partition_the_slot_axis() {
        let pool = pool_of(&[(0, 1.0, 1.0), (3, 1.0, 1.0), (5, 9.0, 9.0)]);
        let index = ShardedWorkerIndex::build(
            &pool,
            6,
            &Domain::square(10.0),
            ShardGridConfig::new(2, 2).with_time_splits(3),
        );
        assert_eq!(index.num_shards(), 12);
        assert_eq!(index.available_count(0), 1);
        assert_eq!(index.available_count(3), 1);
        assert_eq!(index.available_count(5), 1);
        assert_eq!(index.available_count(1), 0);
        assert_eq!(
            index.nearest(3, &Location::new(0.0, 0.0)).unwrap().worker,
            WorkerId(1)
        );
        assert_eq!(
            index.nearest(5, &Location::new(0.0, 0.0)).unwrap().worker,
            WorkerId(2)
        );
        assert!(index.nearest(1, &Location::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn nearest_excluding_with_filters_per_tile() {
        let pool = pool_of(&[(0, 1.0, 0.0), (0, 2.0, 0.0), (0, 8.0, 0.0)]);
        let index =
            ShardedWorkerIndex::build(&pool, 1, &Domain::square(10.0), ShardGridConfig::new(4, 1));
        let q = Location::new(0.0, 0.0);
        let shard0 = index.spatial_shard_of(&Location::new(1.0, 0.0));
        let all = index.nearest_excluding_with(0, &q, |_, _| false).unwrap();
        assert_eq!(all.worker, WorkerId(0));
        let skip0 = index
            .nearest_excluding_with(0, &q, |s, w| s == shard0 && w == WorkerId(0))
            .unwrap();
        assert_eq!(skip0.worker, WorkerId(1));
        let none = index.nearest_excluding_with(0, &q, |_, _| true);
        assert!(none.is_none());
    }

    #[test]
    fn out_of_horizon_slots_answer_empty() {
        let pool = pool_of(&[(0, 1.0, 1.0)]);
        let index =
            ShardedWorkerIndex::build(&pool, 1, &Domain::square(10.0), ShardGridConfig::default());
        assert!(index.nearest(5, &Location::new(0.0, 0.0)).is_none());
        assert!(index.k_nearest(5, &Location::new(0.0, 0.0), 3).is_empty());
        assert!(index
            .nearest_excluding_with(5, &Location::new(0.0, 0.0), |_, _| false)
            .is_none());
        assert_eq!(index.available_count(5), 0);
    }

    #[test]
    fn out_of_domain_workers_clamped_into_border_tiles_are_never_pruned() {
        // Regression for the k-th-distance tile skip: an out-of-domain
        // worker clamps into a border tile while lying *outside* the tile's
        // rectangle, so a rectangle-based bound over-estimates its distance
        // and can skip it.  Geometry: query (-10, 0) routes to tile (0, 0);
        // worker 0 at (-9, 12) clamps into tile (0, 1) — ring 1 — with true
        // distance sqrt(1 + 144) ≈ 12.04, while its tile rectangle
        // [0,10]x[10,20] lies sqrt(100 + 100) ≈ 14.14 away; worker 1 at
        // (3, 0) inside the query tile establishes kth = 13 in ring 0.  A
        // bound that ignores the clamping skips tile (0, 1) (14.14 > 13)
        // and wrongly answers worker 1; the dense index answers worker 0.
        let pool = pool_of(&[(0, -9.0, 12.0), (0, 3.0, 0.0)]);
        let domain = Domain::square(40.0);
        let dense = crate::WorkerIndex::build(&pool, 1, &domain);
        let sharded = ShardedWorkerIndex::build(&pool, 1, &domain, ShardGridConfig::new(4, 4));
        let q = Location::new(-10.0, 0.0);
        assert_eq!(
            dense.nearest(0, &q).unwrap().worker,
            WorkerId(0),
            "sanity: the clamped worker is the true nearest"
        );
        assert_eq!(sharded.nearest(0, &q).unwrap().worker, WorkerId(0));
        // Broader sweep: with out-of-domain workers on two edges, every
        // query x count must stay bit-identical to the dense index.
        let pool = pool_of(&[
            (0, -9.0, 12.0),
            (0, 15.0, 45.0),
            (0, 5.0, 5.0),
            (0, 12.0, 22.0),
            (0, 28.0, 8.0),
            (0, 33.0, 33.0),
            (0, 2.0, 38.0),
            (0, 21.0, 14.0),
        ]);
        let dense = crate::WorkerIndex::build(&pool, 1, &domain);
        let sharded = ShardedWorkerIndex::build(&pool, 1, &domain, ShardGridConfig::new(4, 4));
        for q in [
            Location::new(-10.0, 0.0),
            Location::new(-10.0, 12.0),
            Location::new(0.0, 0.0),
            Location::new(20.0, 50.0),
            Location::new(39.0, 1.0),
            Location::new(20.0, 20.0),
        ] {
            for count in [1, 3, 8] {
                let d: Vec<_> = dense
                    .k_nearest(0, &q, count)
                    .into_iter()
                    .map(|w| (w.worker, w.distance.to_bits()))
                    .collect();
                let s: Vec<_> = sharded
                    .k_nearest(0, &q, count)
                    .into_iter()
                    .map(|w| (w.worker, w.distance.to_bits()))
                    .collect();
                assert_eq!(d, s, "query {q}, count {count}");
            }
        }
    }

    #[test]
    fn mutations_track_registry_counts_and_availability() {
        let pool = pool_of(&[(0, 1.0, 1.0), (0, 8.0, 8.0), (1, 4.0, 4.0)]);
        let mut index =
            ShardedWorkerIndex::build(&pool, 2, &Domain::square(10.0), ShardGridConfig::new(2, 2));
        assert_eq!(index.total_workers(), 3);
        assert_eq!(index.indexed_entries(), 3);
        assert_eq!(index.version(), 0);

        // Insert: a new worker becomes queryable; duplicates are rejected.
        let w = Worker::new(
            WorkerId(9),
            vec![WorkerSlot {
                slot: 0,
                location: Location::new(2.0, 2.0),
            }],
        );
        let m = index.insert_worker(&w);
        assert!(m.applied);
        assert_eq!(m.entries_touched, 2, "splice re-gridded the whole bucket");
        assert_eq!(m.rebuild_equiv_entries, 4);
        assert_eq!(index.available_count(0), 3);
        assert!(!index.insert_worker(&w).applied, "duplicate id rejected");

        // Move: availability unchanged, the entry relocates.
        let m = index.move_worker(WorkerId(9), Location::new(9.0, 9.0));
        assert!(m.applied);
        assert_eq!(index.available_count(0), 3);
        assert_eq!(
            index.nearest(0, &Location::new(9.5, 9.5)).unwrap().worker,
            WorkerId(9)
        );
        let profile = index.worker_profile(WorkerId(9)).unwrap();
        assert_eq!(profile.entries, vec![(0, Location::new(9.0, 9.0))]);

        // Remove: gone from every query path; unknown ids are rejected.
        let m = index.remove_worker(WorkerId(9));
        assert!(m.applied);
        assert_eq!(index.total_workers(), 3);
        assert_eq!(index.available_count(0), 2);
        assert!(index.worker_profile(WorkerId(9)).is_none());
        assert!(!index.remove_worker(WorkerId(9)).applied);
        assert!(
            !index
                .move_worker(WorkerId(9), Location::new(1.0, 1.0))
                .applied
        );
    }

    #[test]
    fn tile_versions_bump_only_on_touched_tiles() {
        let pool = pool_of(&[(0, 1.0, 1.0), (0, 9.0, 9.0)]);
        let mut index =
            ShardedWorkerIndex::build(&pool, 1, &Domain::square(10.0), ShardGridConfig::new(2, 2));
        let home = index.spatial_shard_of(&Location::new(1.0, 1.0));
        let far = index.spatial_shard_of(&Location::new(9.0, 9.0));
        // In-tile drift: only the home tile's version bumps.
        index.move_worker(WorkerId(0), Location::new(2.0, 2.0));
        assert_eq!(index.tile_version(home), 1);
        assert_eq!(index.tile_version(far), 0);
        // Cross-tile move: both the source and destination tiles bump.
        index.move_worker(WorkerId(0), Location::new(8.0, 8.0));
        assert_eq!(index.tile_version(home), 2);
        assert_eq!(index.tile_version(far), 1);
        assert_eq!(index.version(), 3);
    }

    #[test]
    fn occupancy_imbalance_reflects_bucket_skew() {
        // Perfectly balanced: every bucket holds one worker.
        let pool = pool_of(&[(0, 1.0, 1.0), (0, 9.0, 9.0)]);
        let index =
            ShardedWorkerIndex::build(&pool, 1, &Domain::square(10.0), ShardGridConfig::new(2, 2));
        assert_eq!(index.occupancy_imbalance_milli(), 1000);
        // Skewed: 3 workers in one bucket, 1 in another -> max/mean = 3/2.
        let pool = pool_of(&[(0, 1.0, 1.0), (0, 1.2, 1.2), (0, 1.4, 1.4), (0, 9.0, 9.0)]);
        let index =
            ShardedWorkerIndex::build(&pool, 1, &Domain::square(10.0), ShardGridConfig::new(2, 2));
        assert_eq!(index.occupancy_imbalance_milli(), 1500);
    }

    #[test]
    fn degenerate_one_tile_grid_is_a_linear_scan() {
        let pool = pool_of(&[(0, 1.0, 0.0), (0, 2.0, 0.0), (0, 3.0, 0.0)]);
        let index =
            ShardedWorkerIndex::build(&pool, 1, &Domain::square(10.0), ShardGridConfig::new(1, 1));
        let res = index.k_nearest(0, &Location::new(0.0, 0.0), 3);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].worker, WorkerId(0));
        assert_eq!(res[2].worker, WorkerId(2));
    }
}
