//! Property tests for the region-partitioned workload shapes:
//! [`SpatialDistribution::RegionGrid`] (every sample strictly inside its
//! region cell's interior, full coverage at scale) and
//! [`StreamingConfig::region_partitioned`] (round/arrival invariants).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tcsc_core::{Domain, Location};
use tcsc_workload::{ScenarioConfig, SpatialDistribution, StreamingConfig};

/// The region cell of a point under a `cols x rows` lattice.
fn region_of(domain: &Domain, cols: usize, rows: usize, p: &Location) -> (usize, usize) {
    let w = domain.width() / cols as f64;
    let h = domain.height() / rows as f64;
    let cx = (((p.x - domain.min.x) / w).floor() as usize).min(cols - 1);
    let cy = (((p.y - domain.min.y) / h).floor() as usize).min(rows - 1);
    (cx, cy)
}

/// Distance from a point to the nearest boundary of its region cell.
fn boundary_distance(domain: &Domain, cols: usize, rows: usize, p: &Location) -> f64 {
    let w = domain.width() / cols as f64;
    let h = domain.height() / rows as f64;
    let (cx, cy) = region_of(domain, cols, rows, p);
    let x_lo = domain.min.x + cx as f64 * w;
    let y_lo = domain.min.y + cy as f64 * h;
    (p.x - x_lo)
        .min(x_lo + w - p.x)
        .min(p.y - y_lo)
        .min(y_lo + h - p.y)
}

#[test]
fn region_grid_samples_stay_strictly_inside_their_cells() {
    // Across lattice shapes (including non-square), margins and rectangular
    // domains: every sample keeps a margin-sized distance to every region
    // boundary — strictly inside its cell's interior.
    let domains = [
        Domain::square(100.0),
        Domain::new(Location::new(-30.0, 5.0), Location::new(70.0, 45.0)),
    ];
    for domain in &domains {
        for (cols, rows) in [(1usize, 1usize), (2, 5), (4, 4), (7, 3)] {
            for margin in [0.05, 0.15, 0.3] {
                let dist = SpatialDistribution::RegionGrid { cols, rows, margin };
                let mut rng = StdRng::seed_from_u64(1000 + cols as u64 * 10 + rows as u64);
                let min_gap = margin
                    * (domain.width() / cols as f64).min(domain.height() / rows as f64)
                    - 1e-9;
                for p in dist.sample_many(&mut rng, domain, 800) {
                    assert!(domain.contains(&p), "{p} escaped the domain");
                    assert!(
                        boundary_distance(domain, cols, rows, &p) >= min_gap,
                        "{p} violates the {margin} margin on a {cols}x{rows} lattice"
                    );
                }
            }
        }
    }
}

#[test]
fn region_grid_populates_every_cell_for_large_samples() {
    for (cols, rows) in [(2usize, 2usize), (4, 4), (5, 3), (8, 8)] {
        let domain = Domain::square(100.0);
        let dist = SpatialDistribution::RegionGrid {
            cols,
            rows,
            margin: 0.15,
        };
        let mut rng = StdRng::seed_from_u64(77);
        let n = cols * rows * 60;
        let mut seen = vec![false; cols * rows];
        for p in dist.sample_many(&mut rng, &domain, n) {
            let (cx, cy) = region_of(&domain, cols, rows, &p);
            seen[cy * cols + cx] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "{cols}x{rows}: some region cell received no samples out of {n}"
        );
    }
}

#[test]
fn region_grid_tasks_of_a_scenario_respect_their_cells() {
    // End to end through the scenario generator: every *task* of a
    // region-grid scenario lands strictly inside a region cell.
    let regions = 4;
    let cfg = ScenarioConfig::small().with_num_tasks(200).with_placement(
        tcsc_workload::TaskPlacement::Synthetic(SpatialDistribution::region_grid(regions)),
    );
    let scenario = cfg.build();
    assert_eq!(scenario.tasks.len(), 200);
    let min_gap = 0.15 * scenario.domain.width() / regions as f64 - 1e-9;
    for task in &scenario.tasks {
        assert!(
            boundary_distance(&scenario.domain, regions, regions, &task.location) >= min_gap,
            "task {:?} at {} sits within the boundary margin",
            task.id,
            task.location
        );
    }
}

#[test]
fn region_partitioned_stream_has_exact_rounds_and_unique_arrivals() {
    for (regions, rounds, per_round) in [(3usize, 4usize, 6usize), (5, 2, 9), (2, 7, 1)] {
        let config = StreamingConfig::region_partitioned(
            ScenarioConfig::small(),
            regions,
            rounds,
            per_round,
        );
        let streaming = config.build();
        // Round shape.
        assert_eq!(streaming.rounds.len(), rounds);
        assert!(streaming.rounds.iter().all(|r| r.len() == per_round));
        assert_eq!(streaming.num_tasks(), rounds * per_round);
        // Arrival uniqueness across rounds.
        let mut ids = std::collections::HashSet::new();
        for task in streaming.concatenated() {
            assert!(ids.insert(task.id), "duplicate arrival id {:?}", task.id);
        }
        // Every arrival clusters strictly inside a region cell.
        let min_gap = 0.15 * streaming.domain.width() / regions as f64 - 1e-9;
        for task in streaming.concatenated() {
            assert!(
                boundary_distance(&streaming.domain, regions, regions, &task.location) >= min_gap,
                "arrival at {} sits within the boundary margin",
                task.location
            );
        }
        // The concatenation equals the one-shot scenario of the same config.
        let batch = streaming
            .config
            .base
            .clone()
            .with_num_tasks(rounds * per_round)
            .build();
        assert_eq!(streaming.concatenated(), batch.tasks);
        assert_eq!(streaming.workers, batch.workers);
    }
}

#[test]
fn region_partitioned_stream_is_deterministic_per_seed() {
    let build = |seed| {
        StreamingConfig::region_partitioned(ScenarioConfig::small().with_seed(seed), 4, 3, 5)
            .build()
    };
    let a = build(21);
    let b = build(21);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.workers, b.workers);
    let c = build(22);
    assert_ne!(a.rounds, c.rounds, "different seeds must differ");
}
