//! Synthetic POI dataset — the substitute for the Beijing POI dataset.
//!
//! The paper uses a Beijing POI dataset only as a source of task locations
//! (the "Real dataset" series in the plots).  We synthesise an equivalent:
//! a fixed number of points-of-interest arranged as dense urban clusters with
//! a sparse uniform background, which reproduces the skew that distinguishes
//! the real-data series from the purely synthetic distributions.

use rand::Rng;
use tcsc_core::{Domain, Location};

use crate::distribution::SpatialDistribution;

/// Configuration of the synthetic POI dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoiConfig {
    /// Total number of POIs.
    pub count: usize,
    /// Number of dense clusters ("districts").
    pub clusters: usize,
    /// Fraction of POIs that belong to clusters (the rest are uniform
    /// background noise).
    pub clustered_fraction: f64,
    /// Relative spread of each cluster.
    pub spread: f64,
}

impl Default for PoiConfig {
    fn default() -> Self {
        Self {
            count: 2000,
            clusters: 10,
            clustered_fraction: 0.85,
            spread: 0.03,
        }
    }
}

/// A generated POI dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PoiDataset {
    /// The POI locations.
    pub locations: Vec<Location>,
}

impl PoiDataset {
    /// Generates the dataset within `domain`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, domain: &Domain, config: PoiConfig) -> Self {
        let clustered = SpatialDistribution::Clustered {
            clusters: config.clusters,
            spread: config.spread,
        };
        let uniform = SpatialDistribution::Uniform;
        let locations = (0..config.count)
            .map(|_| {
                if rng.gen_bool(config.clustered_fraction.clamp(0.0, 1.0)) {
                    clustered.sample(rng, domain)
                } else {
                    uniform.sample(rng, domain)
                }
            })
            .collect();
        Self { locations }
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Samples `count` task locations from the dataset (with replacement).
    pub fn sample_locations<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Location> {
        assert!(
            !self.locations.is_empty(),
            "cannot sample from an empty POI set"
        );
        (0..count)
            .map(|_| self.locations[rng.gen_range(0..self.locations.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_count_inside_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let domain = Domain::square(100.0);
        let poi = PoiDataset::generate(&mut rng, &domain, PoiConfig::default());
        assert_eq!(poi.len(), 2000);
        assert!(!poi.is_empty());
        assert!(poi.locations.iter().all(|l| domain.contains(l)));
    }

    #[test]
    fn sampling_draws_from_the_dataset() {
        let mut rng = StdRng::seed_from_u64(2);
        let domain = Domain::square(100.0);
        let poi = PoiDataset::generate(&mut rng, &domain, PoiConfig::default());
        let sample = poi.sample_locations(&mut rng, 50);
        assert_eq!(sample.len(), 50);
        for loc in &sample {
            assert!(poi.locations.contains(loc));
        }
    }

    #[test]
    fn poi_dataset_is_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let domain = Domain::square(100.0);
        let poi = PoiDataset::generate(&mut rng, &domain, PoiConfig::default());
        // Count occupancy of a 5x5 lattice: a clustered dataset has a much
        // larger maximum bucket than a uniform one would (~4% per bucket).
        let mut buckets = [0usize; 25];
        for l in &poi.locations {
            let cx = (l.x / 20.0).floor().min(4.0) as usize;
            let cy = (l.y / 20.0).floor().min(4.0) as usize;
            buckets[cy * 5 + cx] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let uniform_expectation = poi.len() / 25;
        assert!(
            max > uniform_expectation * 2,
            "max bucket {max} not clearly above the uniform expectation {uniform_expectation}"
        );
    }

    #[test]
    #[should_panic(expected = "empty POI set")]
    fn sampling_from_empty_dataset_panics() {
        let poi = PoiDataset { locations: vec![] };
        let mut rng = StdRng::seed_from_u64(4);
        let _ = poi.sample_locations(&mut rng, 1);
    }
}
