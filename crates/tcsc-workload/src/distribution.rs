//! Spatial distributions used to place TCSC tasks (Section V-A of the paper).
//!
//! The paper generates synthetic task locations with a public spatial data
//! generator following **uniform**, **Gaussian** and **Zipfian**
//! distributions, with the Gaussian mean at the domain centre and sigma set to
//! one sixth of the domain side length, and the Zipf exponent set to 1.  A
//! **clustered** distribution is also provided as the substitute for the
//! Beijing-POI "real" dataset (hot spots of points around a few centres).

use rand::Rng;
use tcsc_core::{Domain, Location};

/// A spatial distribution over a rectangular domain.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialDistribution {
    /// Uniform over the whole domain.
    Uniform,
    /// Gaussian around the domain centre with `sigma = side / 6` (points are
    /// re-sampled until they fall inside the domain, as the generator used in
    /// the paper keeps most samples within the domain).
    Gaussian,
    /// Zipfian: the domain is divided into a `grid x grid` lattice of cells
    /// whose popularity follows a Zipf law with the given exponent; a cell is
    /// drawn by popularity and the point is uniform within the cell.
    Zipf {
        /// Zipf exponent (the paper uses 1.0).
        exponent: f64,
        /// Lattice resolution per axis.
        grid: usize,
    },
    /// Clustered hot spots: `clusters` Gaussian blobs with the given relative
    /// spread, mimicking a POI dataset.
    Clustered {
        /// Number of hot spots.
        clusters: usize,
        /// Standard deviation of each blob as a fraction of the domain side.
        spread: f64,
    },
    /// Region-partitioned: the domain is divided into a `cols x rows` lattice
    /// of regions; a region is drawn uniformly and the point falls uniformly
    /// within the region's *interior*, shrunk by `margin` (a fraction of the
    /// region size per side).  Tasks therefore cluster strictly inside
    /// region cells and never sit on a region boundary — the workload shape
    /// the sharded index and the region-parallel engine are built for.
    RegionGrid {
        /// Regions along the x axis.
        cols: usize,
        /// Regions along the y axis.
        rows: usize,
        /// Interior margin per side as a fraction of the region size
        /// (clamped to `[0, 0.45]`).
        margin: f64,
    },
}

impl SpatialDistribution {
    /// The paper's default Zipf parameterisation (exponent 1).
    pub fn zipf_default() -> Self {
        Self::Zipf {
            exponent: 1.0,
            grid: 16,
        }
    }

    /// The POI-like clustered substitute for the "real dataset" series.
    pub fn poi_like() -> Self {
        Self::Clustered {
            clusters: 8,
            spread: 0.04,
        }
    }

    /// A `regions x regions` region-partitioned lattice with the default
    /// 15% interior margin.
    pub fn region_grid(regions: usize) -> Self {
        Self::RegionGrid {
            cols: regions.max(1),
            rows: regions.max(1),
            margin: 0.15,
        }
    }

    /// Human-readable label used by the benchmark harness output.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Uniform => "Uniform",
            Self::Gaussian => "Gaussian",
            Self::Zipf { .. } => "Zipfian",
            Self::Clustered { .. } => "Real(POI)",
            Self::RegionGrid { .. } => "Regions",
        }
    }

    /// Samples one location within `domain`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, domain: &Domain) -> Location {
        match self {
            Self::Uniform => Location::new(
                rng.gen_range(domain.min.x..=domain.max.x),
                rng.gen_range(domain.min.y..=domain.max.y),
            ),
            Self::Gaussian => {
                let center = domain.center();
                let sigma_x = domain.width() / 6.0;
                let sigma_y = domain.height() / 6.0;
                // Rejection sampling keeps the point inside the domain.
                for _ in 0..64 {
                    let (gx, gy) = gaussian_pair(rng);
                    let loc = Location::new(center.x + gx * sigma_x, center.y + gy * sigma_y);
                    if domain.contains(&loc) {
                        return loc;
                    }
                }
                domain.clamp(Location::new(center.x, center.y))
            }
            Self::Zipf { exponent, grid } => {
                let grid = (*grid).max(1);
                let rank = zipf_rank(rng, grid * grid, *exponent);
                // Map the rank to a cell via a fixed pseudo-random permutation
                // so that popular cells are scattered over the domain rather
                // than packed into a corner.
                let cell = permute(rank, grid * grid);
                let cx = cell % grid;
                let cy = cell / grid;
                let w = domain.width() / grid as f64;
                let h = domain.height() / grid as f64;
                Location::new(
                    domain.min.x + cx as f64 * w + rng.gen_range(0.0..w),
                    domain.min.y + cy as f64 * h + rng.gen_range(0.0..h),
                )
            }
            Self::Clustered { clusters, spread } => {
                let clusters = (*clusters).max(1);
                let c = rng.gen_range(0..clusters);
                let center = cluster_center(c, clusters, domain);
                let sigma = spread * domain.width().max(domain.height());
                let (gx, gy) = gaussian_pair(rng);
                domain.clamp(Location::new(center.x + gx * sigma, center.y + gy * sigma))
            }
            Self::RegionGrid { cols, rows, margin } => {
                let cols = (*cols).max(1);
                let rows = (*rows).max(1);
                let margin = margin.clamp(0.0, 0.45);
                let region = rng.gen_range(0..cols * rows);
                let (cx, cy) = (region % cols, region / cols);
                let w = domain.width() / cols as f64;
                let h = domain.height() / rows as f64;
                let x_lo = domain.min.x + (cx as f64 + margin) * w;
                let x_hi = domain.min.x + (cx as f64 + 1.0 - margin) * w;
                let y_lo = domain.min.y + (cy as f64 + margin) * h;
                let y_hi = domain.min.y + (cy as f64 + 1.0 - margin) * h;
                Location::new(rng.gen_range(x_lo..x_hi), rng.gen_range(y_lo..y_hi))
            }
        }
    }

    /// Samples `count` locations.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        domain: &Domain,
        count: usize,
    ) -> Vec<Location> {
        (0..count).map(|_| self.sample(rng, domain)).collect()
    }
}

/// A standard normal pair via the Box–Muller transform.
fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Draws a 0-based rank from a Zipf distribution over `n` items.
fn zipf_rank<R: Rng + ?Sized>(rng: &mut R, n: usize, exponent: f64) -> usize {
    debug_assert!(n > 0);
    // Inverse-CDF sampling over the (small) discrete support.
    let weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut target = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            return i;
        }
        target -= w;
    }
    n - 1
}

/// A fixed pseudo-random permutation of `0..n` (splitmix-style hashing with
/// retry), so that Zipf-popular cells are spread over the lattice.
fn permute(index: usize, n: usize) -> usize {
    let mut x = index as u64 ^ 0x9E3779B97F4A7C15;
    for _ in 0..3 {
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
    }
    (x % n as u64) as usize
}

/// Deterministic, well-spread cluster centres for the POI-like distribution.
fn cluster_center(index: usize, clusters: usize, domain: &Domain) -> Location {
    // Place the centres on a sunflower-like spiral so that any number of
    // clusters is spread over the domain.
    let golden = std::f64::consts::PI * (3.0 - 5f64.sqrt());
    let t = (index as f64 + 0.5) / clusters as f64;
    let r = 0.42 * t.sqrt();
    let theta = golden * index as f64;
    let c = domain.center();
    domain.clamp(Location::new(
        c.x + r * theta.cos() * domain.width(),
        c.y + r * theta.sin() * domain.height(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn domain() -> Domain {
        Domain::square(100.0)
    }

    #[test]
    fn all_distributions_stay_inside_the_domain() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = domain();
        for dist in [
            SpatialDistribution::Uniform,
            SpatialDistribution::Gaussian,
            SpatialDistribution::zipf_default(),
            SpatialDistribution::poi_like(),
        ] {
            for loc in dist.sample_many(&mut rng, &d, 500) {
                assert!(d.contains(&loc), "{} produced {loc}", dist.label());
            }
        }
    }

    #[test]
    fn uniform_covers_all_quadrants() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = domain();
        let pts = SpatialDistribution::Uniform.sample_many(&mut rng, &d, 2000);
        let mut quadrants = [0usize; 4];
        for p in pts {
            let q = (p.x > 50.0) as usize + 2 * (p.y > 50.0) as usize;
            quadrants[q] += 1;
        }
        for (i, count) in quadrants.iter().enumerate() {
            assert!(*count > 300, "quadrant {i} only got {count} points");
        }
    }

    #[test]
    fn gaussian_concentrates_around_the_center() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = domain();
        let pts = SpatialDistribution::Gaussian.sample_many(&mut rng, &d, 2000);
        let center = d.center();
        let close = pts.iter().filter(|p| p.distance(&center) < 35.0).count();
        // With sigma ≈ 16.7, the vast majority falls within ~2 sigma.
        assert!(close > 1700, "only {close} of 2000 near the center");
    }

    #[test]
    fn zipf_is_more_skewed_than_uniform() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = domain();
        let cell_of = |p: &Location| {
            let cx = (p.x / 25.0).floor().min(3.0) as usize;
            let cy = (p.y / 25.0).floor().min(3.0) as usize;
            cy * 4 + cx
        };
        let count_max = |pts: &[Location]| {
            let mut counts = [0usize; 16];
            for p in pts {
                counts[cell_of(p)] += 1;
            }
            *counts.iter().max().unwrap()
        };
        let uniform = SpatialDistribution::Uniform.sample_many(&mut rng, &d, 3000);
        let zipf = SpatialDistribution::zipf_default().sample_many(&mut rng, &d, 3000);
        assert!(
            count_max(&zipf) > count_max(&uniform) * 2,
            "zipf max bucket {} not clearly above uniform max bucket {}",
            count_max(&zipf),
            count_max(&uniform)
        );
    }

    #[test]
    fn clustered_points_form_hot_spots() {
        let mut rng = StdRng::seed_from_u64(19);
        let d = domain();
        let pts = SpatialDistribution::poi_like().sample_many(&mut rng, &d, 1000);
        // Count points within 10 units of each cluster centre.
        let mut near_any = 0usize;
        for p in &pts {
            for c in 0..8 {
                if p.distance(&cluster_center(c, 8, &d)) < 12.0 {
                    near_any += 1;
                    break;
                }
            }
        }
        assert!(near_any > 900, "only {near_any} of 1000 near a hot spot");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = domain();
        let a = SpatialDistribution::Gaussian.sample_many(&mut StdRng::seed_from_u64(5), &d, 10);
        let b = SpatialDistribution::Gaussian.sample_many(&mut StdRng::seed_from_u64(5), &d, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn region_grid_points_avoid_region_boundaries() {
        let mut rng = StdRng::seed_from_u64(31);
        let d = domain();
        let dist = SpatialDistribution::region_grid(4);
        for p in dist.sample_many(&mut rng, &d, 2000) {
            assert!(d.contains(&p));
            // 4x4 regions of a 100-unit domain: region size 25, margin 15%
            // => every coordinate stays >= 3.75 away from any multiple of 25.
            for c in [p.x, p.y] {
                let offset = c.rem_euclid(25.0);
                let to_boundary = offset.min(25.0 - offset);
                assert!(
                    to_boundary >= 3.75 - 1e-9,
                    "{p} lies within the margin of a region boundary"
                );
            }
        }
    }

    #[test]
    fn region_grid_covers_every_region() {
        let mut rng = StdRng::seed_from_u64(37);
        let d = domain();
        let dist = SpatialDistribution::region_grid(3);
        let mut seen = [false; 9];
        for p in dist.sample_many(&mut rng, &d, 500) {
            let cx = (p.x / (100.0 / 3.0)).floor().min(2.0) as usize;
            let cy = (p.y / (100.0 / 3.0)).floor().min(2.0) as usize;
            seen[cy * 3 + cx] = true;
        }
        assert!(seen.iter().all(|&s| s), "some region received no tasks");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SpatialDistribution::Uniform.label(), "Uniform");
        assert_eq!(SpatialDistribution::Gaussian.label(), "Gaussian");
        assert_eq!(SpatialDistribution::zipf_default().label(), "Zipfian");
        assert_eq!(SpatialDistribution::poi_like().label(), "Real(POI)");
        assert_eq!(SpatialDistribution::region_grid(4).label(), "Regions");
    }
}
