//! TCSC task generation.
//!
//! Tasks are placed according to a [`SpatialDistribution`] (uniform /
//! Gaussian / Zipfian / POI-like) and all share the same number of time
//! slots `m`, mirroring the paper's experimental setup.

use rand::Rng;
use tcsc_core::{Domain, Location, Task, TaskId};

use crate::distribution::SpatialDistribution;

/// Generates `count` tasks of `num_slots` slots each, with locations drawn
/// from `distribution` over `domain`.
pub fn generate_tasks<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    num_slots: usize,
    distribution: &SpatialDistribution,
    domain: &Domain,
) -> Vec<Task> {
    distribution
        .sample_many(rng, domain, count)
        .into_iter()
        .enumerate()
        .map(|(i, loc)| Task::new(TaskId(i as u32), loc, num_slots))
        .collect()
}

/// Builds tasks from an explicit list of locations (e.g. a POI dataset).
pub fn tasks_from_locations(locations: &[Location], num_slots: usize) -> Vec<Task> {
    locations
        .iter()
        .enumerate()
        .map(|(i, &loc)| Task::new(TaskId(i as u32), loc, num_slots))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_count_tasks_with_m_slots() {
        let mut rng = StdRng::seed_from_u64(1);
        let domain = Domain::square(100.0);
        let tasks = generate_tasks(&mut rng, 25, 300, &SpatialDistribution::Uniform, &domain);
        assert_eq!(tasks.len(), 25);
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id, TaskId(i as u32));
            assert_eq!(t.num_slots, 300);
            assert!(domain.contains(&t.location));
        }
    }

    #[test]
    fn tasks_from_locations_preserves_order() {
        let locs = vec![Location::new(1.0, 2.0), Location::new(3.0, 4.0)];
        let tasks = tasks_from_locations(&locs, 10);
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].location, locs[0]);
        assert_eq!(tasks[1].location, locs[1]);
        assert_eq!(tasks[1].id, TaskId(1));
    }
}
