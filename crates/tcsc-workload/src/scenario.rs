//! Experiment scenarios: the parameter sets of the paper's evaluation
//! (Section V-A) bundled with deterministic workload generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tcsc_core::{Domain, Task, WorkerPool};

use crate::distribution::SpatialDistribution;
use crate::poi::{PoiConfig, PoiDataset};
use crate::tasks::{generate_tasks, tasks_from_locations};
use crate::trajectory::{generate_workers, TrajectoryConfig};

/// How task locations are drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskPlacement {
    /// A synthetic spatial distribution (uniform / Gaussian / Zipf / ...).
    Synthetic(SpatialDistribution),
    /// Sampled from a synthetic POI dataset (the "real dataset" substitute).
    Poi(PoiConfig),
}

impl TaskPlacement {
    /// Label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Synthetic(d) => d.label(),
            Self::Poi(_) => "Real(POI)",
        }
    }
}

/// Full description of an experiment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Number of TCSC tasks `|T|` (paper: 100 / 300 / 500, default 100).
    pub num_tasks: usize,
    /// Number of subtasks per task `m` (paper: 300 / 500 / 1000, default 500).
    pub num_slots: usize,
    /// Number of registered workers `|W|` (paper: the 10,357 T-Drive
    /// trajectories; scaled down by default for laptop-scale runs).
    pub num_workers: usize,
    /// Budget `b` per task-assignment problem (paper: 50 / 100 / 200).
    pub budget: f64,
    /// Interpolation parameter `k` (paper default: 3).
    pub k: usize,
    /// Tree split threshold `ts` (paper default: 4).
    pub ts: usize,
    /// Task placement.
    pub placement: TaskPlacement,
    /// Side length of the square spatial domain.
    pub domain_side: f64,
    /// Worker-trajectory configuration.
    pub trajectories: TrajectoryConfig,
    /// RNG seed so that every scenario is reproducible.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper's default parameterisation, scaled to the requested number of
    /// workers (use `10_357` for the full-size setup).
    pub fn paper_default() -> Self {
        let domain_side = 100.0;
        Self {
            num_tasks: 100,
            num_slots: 500,
            num_workers: 10_357,
            budget: 100.0,
            k: 3,
            ts: 4,
            placement: TaskPlacement::Synthetic(SpatialDistribution::Uniform),
            domain_side,
            trajectories: TrajectoryConfig::paper_default(500),
            seed: 42,
        }
    }

    /// A scaled-down variant that exercises the same code paths within
    /// seconds on a laptop / CI machine.
    pub fn small() -> Self {
        Self {
            num_tasks: 10,
            num_slots: 60,
            num_workers: 400,
            budget: 30.0,
            k: 3,
            ts: 4,
            placement: TaskPlacement::Synthetic(SpatialDistribution::Uniform),
            domain_side: 100.0,
            trajectories: TrajectoryConfig::paper_default(60),
            seed: 42,
        }
    }

    /// Sets the number of subtasks per task (and matches the trajectory
    /// horizon to it).
    pub fn with_num_slots(mut self, m: usize) -> Self {
        self.num_slots = m;
        self.trajectories.horizon = m;
        self
    }

    /// Sets the number of tasks.
    pub fn with_num_tasks(mut self, t: usize) -> Self {
        self.num_tasks = t;
        self
    }

    /// Sets the number of workers.
    pub fn with_num_workers(mut self, w: usize) -> Self {
        self.num_workers = w;
        self
    }

    /// Sets the budget.
    pub fn with_budget(mut self, b: f64) -> Self {
        self.budget = b;
        self
    }

    /// Sets the interpolation parameter `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the tree split threshold `ts`.
    pub fn with_ts(mut self, ts: usize) -> Self {
        self.ts = ts;
        self
    }

    /// Sets the task placement.
    pub fn with_placement(mut self, placement: TaskPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the scenario deterministically.
    pub fn build(&self) -> Scenario {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let domain = Domain::square(self.domain_side);
        let tasks = match &self.placement {
            TaskPlacement::Synthetic(dist) => {
                generate_tasks(&mut rng, self.num_tasks, self.num_slots, dist, &domain)
            }
            TaskPlacement::Poi(cfg) => {
                let poi = PoiDataset::generate(&mut rng, &domain, *cfg);
                let locations = poi.sample_locations(&mut rng, self.num_tasks);
                tasks_from_locations(&locations, self.num_slots)
            }
        };
        let mut trajectories = self.trajectories.clone();
        trajectories.horizon = self.num_slots;
        let workers = generate_workers(&mut rng, self.num_workers, &domain, &trajectories);
        Scenario {
            tasks,
            workers,
            domain,
            config: self.clone(),
        }
    }
}

/// A fully generated scenario: tasks, workers and the spatial domain.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The TCSC tasks to assign.
    pub tasks: Vec<Task>,
    /// The registered workers.
    pub workers: WorkerPool,
    /// The spatial domain.
    pub domain: Domain,
    /// The configuration that produced the scenario.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// The first task (convenient for single-task experiments).
    pub fn first_task(&self) -> &Task {
        &self.tasks[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds_consistently() {
        let scenario = ScenarioConfig::small().build();
        assert_eq!(scenario.tasks.len(), 10);
        assert_eq!(scenario.workers.len(), 400);
        assert!(scenario.tasks.iter().all(|t| t.num_slots == 60));
        assert!(scenario
            .tasks
            .iter()
            .all(|t| scenario.domain.contains(&t.location)));
    }

    #[test]
    fn builders_adjust_parameters() {
        let cfg = ScenarioConfig::small()
            .with_num_slots(80)
            .with_num_tasks(5)
            .with_num_workers(50)
            .with_budget(12.0)
            .with_k(2)
            .with_ts(8)
            .with_seed(7);
        assert_eq!(cfg.num_slots, 80);
        assert_eq!(cfg.trajectories.horizon, 80);
        let scenario = cfg.build();
        assert_eq!(scenario.tasks.len(), 5);
        assert_eq!(scenario.workers.len(), 50);
        assert_eq!(scenario.config.budget, 12.0);
        assert_eq!(scenario.config.k, 2);
        assert_eq!(scenario.config.ts, 8);
    }

    #[test]
    fn same_seed_gives_identical_scenarios() {
        let a = ScenarioConfig::small().with_seed(9).build();
        let b = ScenarioConfig::small().with_seed(9).build();
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.workers, b.workers);
    }

    #[test]
    fn different_seeds_give_different_scenarios() {
        let a = ScenarioConfig::small().with_seed(1).build();
        let b = ScenarioConfig::small().with_seed(2).build();
        assert_ne!(a.tasks, b.tasks);
    }

    #[test]
    fn poi_placement_builds() {
        let cfg = ScenarioConfig::small().with_placement(TaskPlacement::Poi(PoiConfig::default()));
        assert_eq!(cfg.placement.label(), "Real(POI)");
        let scenario = cfg.build();
        assert_eq!(scenario.tasks.len(), 10);
    }

    #[test]
    fn paper_default_matches_section_v() {
        let cfg = ScenarioConfig::paper_default();
        assert_eq!(cfg.num_tasks, 100);
        assert_eq!(cfg.num_slots, 500);
        assert_eq!(cfg.num_workers, 10_357);
        assert_eq!(cfg.budget, 100.0);
        assert_eq!(cfg.k, 3);
        assert_eq!(cfg.ts, 4);
    }
}
