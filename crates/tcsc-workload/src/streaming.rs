//! Streaming workloads: task batches arriving over rounds.
//!
//! The batched/streaming assignment engine consumes task *arrivals* rather
//! than one fixed task set: every round a new batch of tasks enters the
//! system while the worker pool (and its occupancy) persists.
//! [`StreamingScenario`] models that setting deterministically by generating
//! one ordinary [`Scenario`] and splitting its task set into per-round
//! batches, so that the concatenation of all rounds is exactly the task set
//! of the equivalent one-shot scenario — the property the engine's
//! `submit`/`drain` equivalence tests rely on.

use tcsc_core::{Domain, Task, WorkerPool};

use crate::distribution::SpatialDistribution;
use crate::scenario::{Scenario, ScenarioConfig, TaskPlacement};

/// Configuration of a streaming workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingConfig {
    /// The underlying scenario parameters (`num_tasks` is overridden to
    /// `rounds * tasks_per_round`).
    pub base: ScenarioConfig,
    /// Number of arrival rounds.
    pub rounds: usize,
    /// Number of tasks arriving per round.
    pub tasks_per_round: usize,
}

impl StreamingConfig {
    /// A streaming workload over the given base scenario.
    ///
    /// # Panics
    /// Panics when `rounds` or `tasks_per_round` is zero: the generated
    /// scenario guarantees `rounds.len() == config.rounds` with
    /// `tasks_per_round` tasks each, which is unsatisfiable for empty rounds.
    pub fn new(base: ScenarioConfig, rounds: usize, tasks_per_round: usize) -> Self {
        assert!(rounds > 0, "a streaming workload needs at least one round");
        assert!(
            tasks_per_round > 0,
            "a streaming workload needs at least one task per round"
        );
        Self {
            base,
            rounds,
            tasks_per_round,
        }
    }

    /// A CI-sized streaming workload derived from [`ScenarioConfig::small`].
    pub fn small(rounds: usize, tasks_per_round: usize) -> Self {
        Self::new(ScenarioConfig::small(), rounds, tasks_per_round)
    }

    /// A region-partitioned streaming workload: task locations are drawn
    /// from [`SpatialDistribution::RegionGrid`] over a `regions x regions`
    /// lattice, so every arrival clusters strictly inside one region cell
    /// (workers still roam the whole domain).  This is the scenario shape
    /// the sharded index and the concurrent region-parallel engine are
    /// benchmarked on (`fig9s`): matching the engine's shard grid to
    /// `regions` makes almost every task's candidates shard-local.
    pub fn region_partitioned(
        base: ScenarioConfig,
        regions: usize,
        rounds: usize,
        tasks_per_round: usize,
    ) -> Self {
        let base = base.with_placement(TaskPlacement::Synthetic(SpatialDistribution::region_grid(
            regions,
        )));
        Self::new(base, rounds, tasks_per_round)
    }

    /// Generates the streaming scenario deterministically.
    pub fn build(&self) -> StreamingScenario {
        let scenario = self
            .base
            .clone()
            .with_num_tasks(self.rounds * self.tasks_per_round)
            .build();
        let Scenario {
            tasks,
            workers,
            domain,
            ..
        } = scenario;
        let rounds = tasks
            .chunks(self.tasks_per_round)
            .map(|chunk| chunk.to_vec())
            .collect();
        StreamingScenario {
            rounds,
            workers,
            domain,
            config: self.clone(),
        }
    }
}

/// A fully generated streaming workload: per-round task batches over one
/// persistent worker pool.
#[derive(Debug, Clone)]
pub struct StreamingScenario {
    /// Task batches in arrival order; `rounds[r]` arrives in round `r`.
    pub rounds: Vec<Vec<Task>>,
    /// The registered workers (shared by every round).
    pub workers: WorkerPool,
    /// The spatial domain.
    pub domain: Domain,
    /// The configuration that produced the scenario.
    pub config: StreamingConfig,
}

impl StreamingScenario {
    /// Total number of tasks across all rounds.
    pub fn num_tasks(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// All tasks in arrival order, as the equivalent one-shot batch.
    pub fn concatenated(&self) -> Vec<Task> {
        self.rounds.iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_partition_the_equivalent_batch_scenario() {
        let streaming = StreamingConfig::small(3, 4).build();
        assert_eq!(streaming.rounds.len(), 3);
        assert!(streaming.rounds.iter().all(|r| r.len() == 4));
        assert_eq!(streaming.num_tasks(), 12);
        // The concatenation equals the one-shot scenario's task set.
        let batch = ScenarioConfig::small().with_num_tasks(12).build();
        assert_eq!(streaming.concatenated(), batch.tasks);
        assert_eq!(streaming.workers, batch.workers);
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let a = StreamingConfig::small(2, 3).build();
        let b = StreamingConfig::small(2, 3).build();
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    #[should_panic(expected = "at least one task per round")]
    fn zero_tasks_per_round_is_rejected() {
        let _ = StreamingConfig::small(3, 0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_is_rejected() {
        let _ = StreamingConfig::small(0, 3);
    }

    #[test]
    fn region_partitioned_rounds_cluster_inside_region_cells() {
        let streaming =
            StreamingConfig::region_partitioned(ScenarioConfig::small(), 4, 3, 4).build();
        assert_eq!(streaming.rounds.len(), 3);
        let side = streaming.domain.width() / 4.0;
        for task in streaming.concatenated() {
            for c in [task.location.x, task.location.y] {
                let offset = c.rem_euclid(side);
                let to_boundary = offset.min(side - offset);
                assert!(
                    to_boundary > 0.0,
                    "task at {} sits on a region boundary",
                    task.location
                );
            }
        }
    }

    #[test]
    fn task_ids_are_unique_across_rounds() {
        let streaming = StreamingConfig::small(4, 3).build();
        let mut seen = std::collections::HashSet::new();
        for task in streaming.concatenated() {
            assert!(seen.insert(task.id), "duplicate task id across rounds");
        }
    }
}
