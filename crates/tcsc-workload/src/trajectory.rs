//! Synthetic worker trajectories — the substitute for the T-Drive dataset.
//!
//! The paper represents worker movements with 10,357 real taxi trajectories
//! and cuts each trajectory into pieces of 1–5 time slots that become the
//! worker's active (available) slots.  We reproduce the statistical shape of
//! that input with a random-waypoint model over the spatial domain: a worker
//! starts at a point drawn from a (possibly clustered) spatial distribution,
//! repeatedly picks a waypoint and moves towards it with bounded per-slot
//! speed, and registers availability windows of 1–5 consecutive slots cut out
//! of the trajectory, exactly as the paper does.  The algorithms only consume
//! `(slot, location)` availability pairs, so this substitution preserves the
//! properties that matter: spatially clustered workers, bounded movement
//! between consecutive slots, and scarce availability.

use rand::Rng;

use tcsc_core::{Domain, Location, Worker, WorkerId, WorkerSlot};

use crate::distribution::SpatialDistribution;

/// Configuration of the trajectory generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryConfig {
    /// Number of time slots covered by the trajectories (the task horizon).
    pub horizon: usize,
    /// Maximum distance a worker travels between two consecutive slots, as a
    /// fraction of the domain side length.
    pub speed: f64,
    /// Minimum length (in slots) of an availability window.
    pub min_window: usize,
    /// Maximum length (in slots) of an availability window (the paper uses
    /// windows of 1–5 slots).
    pub max_window: usize,
    /// Expected number of availability windows per worker.
    pub windows_per_worker: usize,
    /// Spatial distribution of worker start locations.
    pub start_distribution: SpatialDistribution,
    /// Range of worker reliability scores `[low, high]` (both 1.0 by default,
    /// i.e. fully reliable workers; the reliability extension samples within
    /// this range).
    pub reliability: (f64, f64),
}

impl TrajectoryConfig {
    /// A configuration mirroring the paper's setup for a given horizon.
    pub fn paper_default(horizon: usize) -> Self {
        Self {
            horizon,
            speed: 0.02,
            min_window: 1,
            max_window: 5,
            windows_per_worker: 3,
            start_distribution: SpatialDistribution::Clustered {
                clusters: 12,
                spread: 0.08,
            },
            reliability: (1.0, 1.0),
        }
    }

    /// Same as [`Self::paper_default`] but with worker reliabilities drawn
    /// uniformly from `[low, high]` (for the reliability extension of the
    /// metric).
    pub fn with_reliability(mut self, low: f64, high: f64) -> Self {
        assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high) && low <= high);
        self.reliability = (low, high);
        self
    }
}

/// Generates a single worker trajectory and cuts availability windows out of
/// it.
fn generate_worker<R: Rng + ?Sized>(
    rng: &mut R,
    id: WorkerId,
    domain: &Domain,
    config: &TrajectoryConfig,
) -> Worker {
    let step = config.speed * domain.width().max(domain.height());
    let mut position = config.start_distribution.sample(rng, domain);
    let mut waypoint = config.start_distribution.sample(rng, domain);

    // Walk the full horizon, recording the position at every slot.
    let mut track: Vec<Location> = Vec::with_capacity(config.horizon);
    for _ in 0..config.horizon {
        track.push(position);
        let d = position.distance(&waypoint);
        if d < step {
            position = waypoint;
            waypoint = config.start_distribution.sample(rng, domain);
        } else {
            let f = step / d;
            position = Location::new(
                position.x + (waypoint.x - position.x) * f,
                position.y + (waypoint.y - position.y) * f,
            );
        }
    }

    // Cut availability windows of min..=max slots out of the track.
    let mut availability: Vec<WorkerSlot> = Vec::new();
    for _ in 0..config.windows_per_worker {
        if config.horizon == 0 {
            break;
        }
        let len = rng.gen_range(config.min_window..=config.max_window.max(config.min_window));
        let len = len.min(config.horizon);
        let start = rng.gen_range(0..=config.horizon - len);
        for (slot, &location) in track.iter().enumerate().skip(start).take(len) {
            availability.push(WorkerSlot { slot, location });
        }
    }

    let reliability = if config.reliability.0 >= config.reliability.1 {
        config.reliability.0
    } else {
        rng.gen_range(config.reliability.0..=config.reliability.1)
    };
    Worker::with_reliability(id, availability, reliability)
}

/// Generates a pool of `count` workers with synthetic trajectories.
pub fn generate_workers<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    domain: &Domain,
    config: &TrajectoryConfig,
) -> tcsc_core::WorkerPool {
    (0..count)
        .map(|i| generate_worker(rng, WorkerId(i as u32), domain, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(horizon: usize) -> TrajectoryConfig {
        TrajectoryConfig::paper_default(horizon)
    }

    #[test]
    fn generates_the_requested_number_of_workers() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = generate_workers(&mut rng, 50, &Domain::square(100.0), &config(100));
        assert_eq!(pool.len(), 50);
    }

    #[test]
    fn availability_windows_have_bounded_length_and_are_in_horizon() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = config(60);
        let pool = generate_workers(&mut rng, 200, &Domain::square(100.0), &cfg);
        for w in pool.workers() {
            assert!(
                w.availability_len() <= cfg.windows_per_worker * cfg.max_window,
                "worker {:?} has {} availability slots",
                w.id,
                w.availability_len()
            );
            for ws in w.availability() {
                assert!(ws.slot < 60);
            }
        }
    }

    #[test]
    fn worker_locations_stay_inside_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let domain = Domain::square(100.0);
        let pool = generate_workers(&mut rng, 100, &domain, &config(80));
        for w in pool.workers() {
            for ws in w.availability() {
                assert!(domain.contains(&ws.location));
            }
        }
    }

    #[test]
    fn consecutive_slots_respect_the_speed_bound() {
        let mut rng = StdRng::seed_from_u64(4);
        let domain = Domain::square(100.0);
        let cfg = config(120);
        let pool = generate_workers(&mut rng, 100, &domain, &cfg);
        let max_step = cfg.speed * 100.0 + 1e-9;
        for w in pool.workers() {
            let avail = w.availability();
            for pair in avail.windows(2) {
                if pair[1].slot == pair[0].slot + 1 {
                    let d = pair[0].location.distance(&pair[1].location);
                    assert!(d <= max_step, "step of {d} exceeds the speed bound");
                }
            }
        }
    }

    #[test]
    fn reliability_sampling_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = config(50).with_reliability(0.6, 0.9);
        let pool = generate_workers(&mut rng, 100, &Domain::square(100.0), &cfg);
        for w in pool.workers() {
            assert!((0.6..=0.9).contains(&w.reliability));
        }
    }

    #[test]
    fn default_workers_are_fully_reliable() {
        let mut rng = StdRng::seed_from_u64(6);
        let pool = generate_workers(&mut rng, 20, &Domain::square(100.0), &config(30));
        assert!(pool.workers().iter().all(|w| w.reliability == 1.0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let domain = Domain::square(100.0);
        let a = generate_workers(&mut StdRng::seed_from_u64(9), 10, &domain, &config(40));
        let b = generate_workers(&mut StdRng::seed_from_u64(9), 10, &domain, &config(40));
        assert_eq!(a, b);
    }

    #[test]
    fn most_slots_have_some_available_worker_for_large_pools() {
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = config(100);
        let pool = generate_workers(&mut rng, 2000, &Domain::square(100.0), &cfg);
        let covered = (0..100)
            .filter(|&slot| pool.available_at(slot).next().is_some())
            .count();
        assert!(covered > 90, "only {covered} of 100 slots have workers");
    }
}
