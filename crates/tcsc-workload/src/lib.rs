//! # tcsc-workload
//!
//! Workload generators and synthetic datasets for the TCSC experiments:
//!
//! * [`distribution`] — uniform / Gaussian / Zipfian / clustered spatial
//!   distributions of task locations (Section V-A of the paper);
//! * [`tasks`] — TCSC task generation;
//! * [`trajectory`] — synthetic worker trajectories and availability windows
//!   (the substitute for the T-Drive taxi dataset);
//! * [`poi`] — a synthetic clustered POI dataset (the substitute for the
//!   Beijing POI dataset);
//! * [`scenario`] — the paper's default parameter sets bundled into
//!   reproducible, seeded scenarios;
//! * [`streaming`] — task batches arriving over rounds, for the batched /
//!   streaming assignment engine;
//! * [`events`] — scenario → event-trace conversion: timed task-arrival
//!   traces for the discrete-event distributed runtime (`tcsc-sim`), plus
//!   heavy-tailed service streams (bounded-Pareto inter-arrivals under a
//!   cyclic rush-hour [`PhaseSchedule`], sampled one arrival at a time by
//!   the O(1)-memory [`ArrivalSampler`]), seeded worker-motion tapes
//!   ([`MotionTape`]: waypoint drift + session churn) and the merged
//!   [`ServiceEvent`] stream consumed by the mobile-worker service driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod events;
pub mod poi;
pub mod scenario;
pub mod streaming;
pub mod tasks;
pub mod trajectory;

pub use distribution::SpatialDistribution;
pub use events::{
    interleave, ArrivalPhase, ArrivalSampler, ArrivalTrace, BoundedPareto, HeavyTailedArrivals,
    MotionEvent, MotionTape, PhaseSchedule, ServiceEvent, TaskArrival, WorkerChurnConfig,
    WorkerMotion,
};
pub use poi::{PoiConfig, PoiDataset};
pub use scenario::{Scenario, ScenarioConfig, TaskPlacement};
pub use streaming::{StreamingConfig, StreamingScenario};
pub use tasks::{generate_tasks, tasks_from_locations};
pub use trajectory::{generate_workers, TrajectoryConfig};
