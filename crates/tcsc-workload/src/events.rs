//! Scenario → event-trace conversion: turns a [`StreamingScenario`]'s rounds
//! into a timed sequence of task-arrival events, the input format of the
//! discrete-event distributed runtime (`tcsc-sim`) — and of any future real
//! ingestion pipeline.
//!
//! Beyond the fixed-interval round traces, the module provides **heavy-tailed
//! service arrivals**: a seeded [`BoundedPareto`] inter-arrival sampler
//! modulated by a [`PhaseSchedule`] of rate multipliers (rush-hour bursts
//! where the arrival rate exceeds the drain rate), consumed either as an
//! unbounded streaming [`ArrivalSampler`] (the million-task `fig9svc` service
//! driver) or collected into a finite [`ArrivalTrace`] via
//! [`ArrivalTrace::heavy_tailed`].  Generation is deterministic per seed and
//! arrival times are monotone — both pinned by the module's property tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_core::{Domain, Task, TaskId};

use crate::distribution::SpatialDistribution;
use crate::streaming::StreamingScenario;

/// One task arrival at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskArrival {
    /// Arrival time in microseconds since the trace start.
    pub at_us: u64,
    /// The arrival round the task belongs to.
    pub round: usize,
    /// The arriving task.
    pub task: Task,
}

/// A timed trace of task arrivals, grouped into rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// The arrivals, sorted by `(at_us, round, submission order)`.
    pub arrivals: Vec<TaskArrival>,
    /// The configured inter-round interval.
    pub round_interval_us: u64,
    /// Number of rounds in the trace.
    pub rounds: usize,
}

impl ArrivalTrace {
    /// Converts a streaming scenario into an arrival trace: round `r`'s tasks
    /// all arrive at `r * round_interval_us`, in their submission order.
    pub fn from_streaming(scenario: &StreamingScenario, round_interval_us: u64) -> Self {
        let arrivals = scenario
            .rounds
            .iter()
            .enumerate()
            .flat_map(|(round, tasks)| {
                tasks.iter().cloned().map(move |task| TaskArrival {
                    at_us: round as u64 * round_interval_us,
                    round,
                    task,
                })
            })
            .collect();
        Self {
            arrivals,
            round_interval_us,
            rounds: scenario.rounds.len(),
        }
    }

    /// A one-round trace with every task arriving at time 0.
    pub fn immediate(tasks: Vec<Task>) -> Self {
        Self {
            arrivals: tasks
                .into_iter()
                .map(|task| TaskArrival {
                    at_us: 0,
                    round: 0,
                    task,
                })
                .collect(),
            round_interval_us: 0,
            rounds: 1,
        }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The time of the last arrival (0 for an empty trace).
    pub fn duration_us(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.at_us)
    }

    /// The trace regrouped as `(arrival time, tasks)` batches in round order
    /// — the shape consumed by the simulated cluster's submit schedule.
    pub fn batches(&self) -> Vec<(u64, Vec<Task>)> {
        let mut out: Vec<(u64, Vec<Task>)> = Vec::with_capacity(self.rounds);
        for arrival in &self.arrivals {
            match out.last_mut() {
                Some((at, tasks)) if *at == arrival.at_us => tasks.push(arrival.task.clone()),
                _ => out.push((arrival.at_us, vec![arrival.task.clone()])),
            }
        }
        out
    }

    /// A finite heavy-tailed trace: the first `count` arrivals of
    /// `config`'s [`ArrivalSampler`].  Each arrival's `round` is the phase
    /// segment it fell into; `round_interval_us` is 0 (inter-arrival times
    /// are irregular by construction).
    pub fn heavy_tailed(config: &HeavyTailedArrivals, count: usize) -> Self {
        let arrivals: Vec<TaskArrival> = config.sampler().take(count).collect();
        let rounds = arrivals.last().map_or(0, |a| a.round + 1);
        Self {
            arrivals,
            round_interval_us: 0,
            rounds,
        }
    }
}

/// A bounded-Pareto distribution over `[low, high]`: the heavy-tailed
/// inter-arrival model.  Most samples sit near `low`, a tail reaches up to
/// `high` — the burstiness of real task streams, without the unbounded
/// variance of the pure Pareto (the cap keeps trace durations and test
/// expectations finite).
///
/// Sampling inverts the truncated CDF:
/// `x = low * (1 - u * (1 - (low/high)^alpha))^(-1/alpha)` for uniform `u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    low: f64,
    high: f64,
}

impl BoundedPareto {
    /// A bounded Pareto with tail index `alpha` over `[low, high]`.
    ///
    /// # Panics
    /// Panics unless `alpha > 0` and `0 < low < high`.
    pub fn new(alpha: f64, low: f64, high: f64) -> Self {
        assert!(alpha > 0.0, "the Pareto tail index must be positive");
        assert!(
            0.0 < low && low < high,
            "a bounded Pareto needs 0 < low < high"
        );
        Self { alpha, low, high }
    }

    /// The lower bound.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// The upper truncation bound.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Draws one sample (always inside `[low, high]`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.gen_range(0.0..1.0);
        let ratio_a = (self.low / self.high).powf(self.alpha);
        let x = self.low * (1.0 - u * (1.0 - ratio_a)).powf(-1.0 / self.alpha);
        x.clamp(self.low, self.high)
    }

    /// The distribution mean (closed form of the truncated Pareto).
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.alpha, self.low, self.high);
        let ratio_a = (l / h).powf(a);
        if (a - 1.0).abs() < 1e-12 {
            // alpha = 1: the general formula degenerates; mean is
            // l * ln(h/l) / (1 - l/h).
            return l * (h / l).ln() / (1.0 - ratio_a);
        }
        (a * l.powf(a)) / (1.0 - ratio_a) * (l.powf(1.0 - a) - h.powf(1.0 - a)) / (a - 1.0)
    }
}

/// One phase of an arrival schedule: a label, a duration and a rate
/// multiplier applied to the base arrival rate (so `2.0` halves the
/// inter-arrival times — a burst; `0.5` doubles them — a lull).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalPhase {
    /// Phase name (reported per-phase in the service SLO tables).
    pub label: &'static str,
    /// Phase duration in microseconds of trace time.
    pub duration_us: u64,
    /// Arrival-rate multiplier (`> 0`); inter-arrival samples are divided
    /// by it.
    pub rate_multiplier: f64,
}

/// A cyclic schedule of [`ArrivalPhase`]s: the trace walks the phases in
/// order and wraps around — mornings keep coming.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    phases: Vec<ArrivalPhase>,
}

impl PhaseSchedule {
    /// A schedule cycling through `phases`.
    ///
    /// # Panics
    /// Panics when `phases` is empty, any duration is zero or any rate
    /// multiplier is non-positive.
    pub fn new(phases: Vec<ArrivalPhase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        for p in &phases {
            assert!(p.duration_us > 0, "phase {} has zero duration", p.label);
            assert!(
                p.rate_multiplier > 0.0,
                "phase {} has non-positive rate",
                p.label
            );
        }
        Self { phases }
    }

    /// The canonical service-day shape: calm → rush-hour burst → recovery,
    /// with the rush arriving `burst_multiplier` times faster.
    pub fn rush_hour(calm_us: u64, rush_us: u64, burst_multiplier: f64) -> Self {
        Self::new(vec![
            ArrivalPhase {
                label: "calm",
                duration_us: calm_us,
                rate_multiplier: 1.0,
            },
            ArrivalPhase {
                label: "rush",
                duration_us: rush_us,
                rate_multiplier: burst_multiplier,
            },
            ArrivalPhase {
                label: "recovery",
                duration_us: calm_us,
                rate_multiplier: 1.0,
            },
        ])
    }

    /// The phases in cycle order.
    pub fn phases(&self) -> &[ArrivalPhase] {
        &self.phases
    }

    /// One full cycle's duration in microseconds.
    pub fn cycle_us(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_us).sum()
    }

    /// The phase in effect at `at_us`, with the global **segment index** —
    /// the number of phase boundaries crossed since the trace start (cycle
    /// count × phases per cycle + position in cycle).  Segment indices are
    /// what [`TaskArrival::round`] carries for heavy-tailed traces.
    pub fn segment_at(&self, at_us: u64) -> (usize, &ArrivalPhase) {
        let cycle = self.cycle_us();
        let (full_cycles, mut within) = (at_us / cycle, at_us % cycle);
        for (i, phase) in self.phases.iter().enumerate() {
            if within < phase.duration_us {
                return (full_cycles as usize * self.phases.len() + i, phase);
            }
            within -= phase.duration_us;
        }
        unreachable!("within < cycle_us is inside some phase");
    }
}

/// Configuration of a heavy-tailed service arrival stream: a seeded
/// bounded-Pareto inter-arrival sampler modulated by a cyclic phase
/// schedule, with task locations drawn from a spatial distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyTailedArrivals {
    /// Generator seed: same seed ⇒ bit-identical stream.
    pub seed: u64,
    /// Base inter-arrival distribution in microseconds.
    pub inter_arrival_us: BoundedPareto,
    /// Rate-multiplier schedule (bursts and lulls).
    pub schedule: PhaseSchedule,
    /// Slots per generated task.
    pub num_slots: usize,
    /// Spatial distribution of task locations.
    pub distribution: SpatialDistribution,
    /// The domain locations are drawn over.
    pub domain: Domain,
}

impl HeavyTailedArrivals {
    /// An unbounded streaming sampler over this configuration (restartable:
    /// every call starts an identical stream).
    pub fn sampler(&self) -> ArrivalSampler<'_> {
        ArrivalSampler {
            config: self,
            rng: StdRng::seed_from_u64(self.seed),
            clock_us: 0.0,
            next_id: 0,
        }
    }
}

/// The streaming iterator over a [`HeavyTailedArrivals`] configuration:
/// yields one [`TaskArrival`] at a time, forever, in O(1) memory — the
/// shape a million-task service driver consumes without materialising a
/// trace.  `round` is the schedule's phase segment index at the arrival
/// time.
#[derive(Debug)]
pub struct ArrivalSampler<'a> {
    config: &'a HeavyTailedArrivals,
    rng: StdRng,
    clock_us: f64,
    next_id: u32,
}

impl ArrivalSampler<'_> {
    /// Generates the next arrival.
    pub fn next_arrival(&mut self) -> TaskArrival {
        let config = self.config;
        let at_us = self.clock_us as u64;
        let (segment, phase) = config.schedule.segment_at(at_us);
        // Inter-arrival to the *next* task, compressed by the current
        // phase's rate multiplier.  The clock accumulates in f64 so bursts
        // with sub-microsecond gaps still advance monotonically.
        let gap = config.inter_arrival_us.sample(&mut self.rng) / phase.rate_multiplier;
        self.clock_us += gap;
        let location = config.distribution.sample(&mut self.rng, &config.domain);
        let task = Task::new(TaskId(self.next_id), location, config.num_slots);
        self.next_id = self.next_id.wrapping_add(1);
        TaskArrival {
            at_us,
            round: segment,
            task,
        }
    }
}

impl Iterator for ArrivalSampler<'_> {
    type Item = TaskArrival;

    fn next(&mut self) -> Option<TaskArrival> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingConfig;

    #[test]
    fn streaming_rounds_map_to_timed_batches() {
        let streaming = StreamingConfig::small(3, 4).build();
        let trace = ArrivalTrace::from_streaming(&streaming, 50_000);
        assert_eq!(trace.len(), 12);
        assert_eq!(trace.rounds, 3);
        assert_eq!(trace.duration_us(), 100_000);
        let batches = trace.batches();
        assert_eq!(batches.len(), 3);
        for (round, (at, tasks)) in batches.iter().enumerate() {
            assert_eq!(*at, round as u64 * 50_000);
            assert_eq!(tasks.len(), 4);
            assert_eq!(tasks, &streaming.rounds[round]);
        }
        // The flattened trace preserves the submission order exactly.
        let flat: Vec<_> = trace.arrivals.iter().map(|a| a.task.clone()).collect();
        assert_eq!(flat, streaming.concatenated());
    }

    #[test]
    fn immediate_trace_is_one_round_at_time_zero() {
        let streaming = StreamingConfig::small(2, 3).build();
        let trace = ArrivalTrace::immediate(streaming.concatenated());
        assert_eq!(trace.rounds, 1);
        assert_eq!(trace.duration_us(), 0);
        assert_eq!(trace.batches().len(), 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn zero_interval_collapses_rounds_into_one_batch() {
        let streaming = StreamingConfig::small(3, 2).build();
        let trace = ArrivalTrace::from_streaming(&streaming, 0);
        assert_eq!(trace.rounds, 3);
        let batches = trace.batches();
        assert_eq!(batches.len(), 1, "same-time rounds merge into one batch");
        assert_eq!(batches[0].1.len(), 6);
    }

    fn heavy_config(seed: u64) -> HeavyTailedArrivals {
        HeavyTailedArrivals {
            seed,
            inter_arrival_us: BoundedPareto::new(1.3, 50.0, 20_000.0),
            schedule: PhaseSchedule::rush_hour(400_000, 200_000, 4.0),
            num_slots: 3,
            distribution: SpatialDistribution::Uniform,
            domain: Domain::square(1_000.0),
        }
    }

    #[test]
    fn bounded_pareto_samples_stay_in_bounds_and_match_the_mean() {
        let dist = BoundedPareto::new(1.3, 50.0, 20_000.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            assert!((dist.low()..=dist.high()).contains(&x), "sample {x}");
            sum += x;
        }
        let empirical = sum / n as f64;
        let analytic = dist.mean();
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical mean {empirical} vs analytic {analytic}"
        );
        // alpha = 1 uses the degenerate closed form.
        let unit = BoundedPareto::new(1.0, 1.0, 100.0);
        assert!((unit.mean() - 100.0f64.ln() / 0.99).abs() < 1e-9);
    }

    #[test]
    fn heavy_tailed_streams_are_deterministic_per_seed_and_monotone() {
        for seed in [0u64, 7, 99] {
            let config = heavy_config(seed);
            let a: Vec<TaskArrival> = config.sampler().take(2_000).collect();
            let b: Vec<TaskArrival> = config.sampler().take(2_000).collect();
            assert_eq!(a, b, "seed {seed}: same seed must replay bit-identically");
            // Monotone arrival times, sequential ids, segments non-decreasing.
            for pair in a.windows(2) {
                assert!(pair[0].at_us <= pair[1].at_us, "seed {seed}: time reversed");
                assert!(
                    pair[0].round <= pair[1].round,
                    "seed {seed}: segment reversed"
                );
            }
            for (i, arrival) in a.iter().enumerate() {
                assert_eq!(arrival.task.id, tcsc_core::TaskId(i as u32));
                assert_eq!(arrival.task.num_slots, 3);
                assert!(config.domain.contains(&arrival.task.location));
            }
        }
        // Different seeds diverge.
        let a: Vec<TaskArrival> = heavy_config(1).sampler().take(100).collect();
        let b: Vec<TaskArrival> = heavy_config(2).sampler().take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn burst_phases_compress_inter_arrival_times() {
        let config = heavy_config(11);
        let arrivals: Vec<TaskArrival> = config.sampler().take(50_000).collect();
        // Count arrivals per phase label over the covered span.
        let (mut rush, mut calm) = (0u64, 0u64);
        let (mut rush_us, mut calm_us) = (0u64, 0u64);
        let cycle = config.schedule.cycle_us();
        let covered_cycles = arrivals.last().unwrap().at_us / cycle + 1;
        for phase in config.schedule.phases() {
            if phase.label == "rush" {
                rush_us += phase.duration_us * covered_cycles;
            } else {
                calm_us += phase.duration_us * covered_cycles;
            }
        }
        for arrival in &arrivals {
            let (_, phase) = config.schedule.segment_at(arrival.at_us);
            if phase.label == "rush" {
                rush += 1;
            } else {
                calm += 1;
            }
        }
        let rush_rate = rush as f64 / rush_us as f64;
        let calm_rate = calm as f64 / calm_us as f64;
        assert!(
            rush_rate > 2.5 * calm_rate,
            "a 4x burst must arrive much faster: rush {rush_rate} vs calm {calm_rate}"
        );
    }

    #[test]
    fn segment_indices_walk_the_cyclic_schedule() {
        let schedule = PhaseSchedule::rush_hour(100, 50, 4.0);
        assert_eq!(schedule.cycle_us(), 250);
        assert_eq!(schedule.segment_at(0), (0, &schedule.phases()[0]));
        assert_eq!(schedule.segment_at(99), (0, &schedule.phases()[0]));
        assert_eq!(schedule.segment_at(100), (1, &schedule.phases()[1]));
        assert_eq!(schedule.segment_at(150), (2, &schedule.phases()[2]));
        // The second cycle continues the global segment count.
        assert_eq!(schedule.segment_at(250), (3, &schedule.phases()[0]));
        assert_eq!(schedule.segment_at(350), (4, &schedule.phases()[1]));
    }

    #[test]
    fn heavy_tailed_trace_collects_the_stream() {
        let config = heavy_config(3);
        let trace = ArrivalTrace::heavy_tailed(&config, 500);
        assert_eq!(trace.len(), 500);
        assert_eq!(trace.round_interval_us, 0);
        assert_eq!(trace.rounds, trace.arrivals.last().unwrap().round + 1);
        let direct: Vec<TaskArrival> = config.sampler().take(500).collect();
        assert_eq!(trace.arrivals, direct);
    }

    #[test]
    #[should_panic(expected = "0 < low < high")]
    fn degenerate_pareto_bounds_are_rejected() {
        let _ = BoundedPareto::new(1.5, 10.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedules_are_rejected() {
        let _ = PhaseSchedule::new(Vec::new());
    }
}
