//! Scenario → event-trace conversion: turns a [`StreamingScenario`]'s rounds
//! into a timed sequence of task-arrival events, the input format of the
//! discrete-event distributed runtime (`tcsc-sim`) — and of any future real
//! ingestion pipeline.

use tcsc_core::Task;

use crate::streaming::StreamingScenario;

/// One task arrival at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskArrival {
    /// Arrival time in microseconds since the trace start.
    pub at_us: u64,
    /// The arrival round the task belongs to.
    pub round: usize,
    /// The arriving task.
    pub task: Task,
}

/// A timed trace of task arrivals, grouped into rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// The arrivals, sorted by `(at_us, round, submission order)`.
    pub arrivals: Vec<TaskArrival>,
    /// The configured inter-round interval.
    pub round_interval_us: u64,
    /// Number of rounds in the trace.
    pub rounds: usize,
}

impl ArrivalTrace {
    /// Converts a streaming scenario into an arrival trace: round `r`'s tasks
    /// all arrive at `r * round_interval_us`, in their submission order.
    pub fn from_streaming(scenario: &StreamingScenario, round_interval_us: u64) -> Self {
        let arrivals = scenario
            .rounds
            .iter()
            .enumerate()
            .flat_map(|(round, tasks)| {
                tasks.iter().cloned().map(move |task| TaskArrival {
                    at_us: round as u64 * round_interval_us,
                    round,
                    task,
                })
            })
            .collect();
        Self {
            arrivals,
            round_interval_us,
            rounds: scenario.rounds.len(),
        }
    }

    /// A one-round trace with every task arriving at time 0.
    pub fn immediate(tasks: Vec<Task>) -> Self {
        Self {
            arrivals: tasks
                .into_iter()
                .map(|task| TaskArrival {
                    at_us: 0,
                    round: 0,
                    task,
                })
                .collect(),
            round_interval_us: 0,
            rounds: 1,
        }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The time of the last arrival (0 for an empty trace).
    pub fn duration_us(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.at_us)
    }

    /// The trace regrouped as `(arrival time, tasks)` batches in round order
    /// — the shape consumed by the simulated cluster's submit schedule.
    pub fn batches(&self) -> Vec<(u64, Vec<Task>)> {
        let mut out: Vec<(u64, Vec<Task>)> = Vec::with_capacity(self.rounds);
        for arrival in &self.arrivals {
            match out.last_mut() {
                Some((at, tasks)) if *at == arrival.at_us => tasks.push(arrival.task.clone()),
                _ => out.push((arrival.at_us, vec![arrival.task.clone()])),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingConfig;

    #[test]
    fn streaming_rounds_map_to_timed_batches() {
        let streaming = StreamingConfig::small(3, 4).build();
        let trace = ArrivalTrace::from_streaming(&streaming, 50_000);
        assert_eq!(trace.len(), 12);
        assert_eq!(trace.rounds, 3);
        assert_eq!(trace.duration_us(), 100_000);
        let batches = trace.batches();
        assert_eq!(batches.len(), 3);
        for (round, (at, tasks)) in batches.iter().enumerate() {
            assert_eq!(*at, round as u64 * 50_000);
            assert_eq!(tasks.len(), 4);
            assert_eq!(tasks, &streaming.rounds[round]);
        }
        // The flattened trace preserves the submission order exactly.
        let flat: Vec<_> = trace.arrivals.iter().map(|a| a.task.clone()).collect();
        assert_eq!(flat, streaming.concatenated());
    }

    #[test]
    fn immediate_trace_is_one_round_at_time_zero() {
        let streaming = StreamingConfig::small(2, 3).build();
        let trace = ArrivalTrace::immediate(streaming.concatenated());
        assert_eq!(trace.rounds, 1);
        assert_eq!(trace.duration_us(), 0);
        assert_eq!(trace.batches().len(), 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn zero_interval_collapses_rounds_into_one_batch() {
        let streaming = StreamingConfig::small(3, 2).build();
        let trace = ArrivalTrace::from_streaming(&streaming, 0);
        assert_eq!(trace.rounds, 3);
        let batches = trace.batches();
        assert_eq!(batches.len(), 1, "same-time rounds merge into one batch");
        assert_eq!(batches[0].1.len(), 6);
    }
}
