//! Trace determinism: the observability layer is locked the same way the
//! committed results are.
//!
//! * the same seed must reproduce a **byte-identical** chrome://tracing dump;
//! * the logical-stream digest (`ObsReport::digest`) is invariant across node
//!   counts, latency models and grant policies — transport and policy events
//!   move, the committed logical timeline never does;
//! * exporting a trace and replaying it through the parser reproduces the
//!   digest bit-for-bit (`replay_digest` round trip);
//! * turning recording on changes nothing about the outcome itself.

use std::rc::Rc;

use tcsc_assign::GrantPolicy;
use tcsc_core::EuclideanCost;
use tcsc_obs::{parse_chrome_trace_jsonl, replay_digest};
use tcsc_sim::{run_cluster, LatencyModel, SimBatch, SimClusterConfig, SimOutcome};
use tcsc_workload::{ScenarioConfig, SpatialDistribution, TaskPlacement};

fn scenario() -> (tcsc_workload::Scenario, usize) {
    let cfg = ScenarioConfig::small()
        .with_num_tasks(10)
        .with_num_slots(30)
        .with_num_workers(150)
        .with_placement(TaskPlacement::Synthetic(SpatialDistribution::region_grid(
            3,
        )));
    let slots = cfg.num_slots;
    (cfg.build(), slots)
}

fn run(scenario: &tcsc_workload::Scenario, slots: usize, config: &SimClusterConfig) -> SimOutcome {
    run_cluster(
        &scenario.workers,
        slots,
        &scenario.domain,
        vec![SimBatch::immediate(scenario.tasks.clone())],
        Rc::new(EuclideanCost::default()),
        config,
    )
}

#[test]
fn same_seed_reproduces_a_byte_identical_chrome_trace() {
    let (scenario, slots) = scenario();
    let config = SimClusterConfig::new(3, 3, 40.0, LatencyModel::Uniform { min: 10, max: 900 })
        .with_policy(GrantPolicy::Optimistic)
        .with_seed(21)
        .with_obs();
    let a = run(&scenario, slots, &config);
    let b = run(&scenario, slots, &config);
    let (obs_a, obs_b) = (a.obs.expect("obs recorded"), b.obs.expect("obs recorded"));
    assert_eq!(
        obs_a.chrome_trace(),
        obs_b.chrome_trace(),
        "same seed must dump the identical trace, byte for byte"
    );
    assert_eq!(obs_a.digest, obs_b.digest);
    assert_eq!(obs_a.events, obs_b.events);
    assert!(
        !obs_a.events.is_empty(),
        "a live cluster run must leave a trace"
    );
}

#[test]
fn logical_digest_is_invariant_across_nodes_latency_and_policy() {
    let (scenario, slots) = scenario();
    let mut digests = Vec::new();
    for nodes in [1, 2, 4] {
        for latency in [
            LatencyModel::Zero,
            LatencyModel::Fixed(250),
            LatencyModel::Uniform { min: 20, max: 4000 },
        ] {
            for policy in [GrantPolicy::Barrier, GrantPolicy::Optimistic] {
                let config = SimClusterConfig::new(nodes, 3, 55.0, latency)
                    .with_policy(policy)
                    .with_seed(7 + nodes as u64)
                    .with_obs();
                let outcome = run(&scenario, slots, &config);
                let obs = outcome.obs.expect("obs recorded");
                digests.push((nodes, latency, policy, obs.digest));
            }
        }
    }
    let reference = digests[0].3;
    for (nodes, latency, policy, digest) in &digests {
        assert_eq!(
            *digest, reference,
            "logical digest diverged: {nodes} nodes, {latency:?}, {policy:?}"
        );
    }
}

#[test]
fn exported_trace_replays_to_the_same_digest() {
    let (scenario, slots) = scenario();
    for policy in [GrantPolicy::Barrier, GrantPolicy::Optimistic] {
        let config = SimClusterConfig::new(2, 3, 40.0, LatencyModel::Fixed(300))
            .with_policy(policy)
            .with_seed(5)
            .with_obs();
        let outcome = run(&scenario, slots, &config);
        let obs = outcome.obs.expect("obs recorded");
        let replayed = parse_chrome_trace_jsonl(&obs.chrome_trace());
        assert!(!replayed.is_empty(), "the dump must parse back");
        assert_eq!(
            replay_digest(&replayed),
            obs.digest,
            "export -> parse -> digest must round-trip under {policy:?}"
        );
    }
}

#[test]
fn recording_never_perturbs_the_outcome() {
    let (scenario, slots) = scenario();
    for policy in [GrantPolicy::Barrier, GrantPolicy::Optimistic] {
        let base = SimClusterConfig::new(3, 3, 55.0, LatencyModel::Uniform { min: 20, max: 4000 })
            .with_policy(policy)
            .with_seed(13)
            .with_trace();
        let off = run(&scenario, slots, &base);
        let on = run(&scenario, slots, &base.clone().with_obs());
        assert!(off.obs.is_none());
        assert!(on.obs.is_some());
        assert_eq!(off.assignment, on.assignment, "plans diverged: {policy:?}");
        assert_eq!(off.conflicts, on.conflicts);
        assert_eq!(off.executions, on.executions);
        assert_eq!(off.stats, on.stats);
        assert_eq!(off.rollbacks, on.rollbacks);
        assert_eq!(off.supersedes, on.supersedes);
        assert_eq!(off.finish_time_us, on.finish_time_us);
        assert_eq!(off.delivered_events, on.delivered_events);
        assert_eq!(off.trace, on.trace, "the event trace must be untouched");
        assert!(
            on.supersedes <= on.rollbacks,
            "supersedes is a subset of rollbacks"
        );
        if policy == GrantPolicy::Barrier {
            assert_eq!(on.rollbacks, 0);
        }
    }
}

#[test]
fn recorded_metrics_mirror_the_outcome_counters() {
    let (scenario, slots) = scenario();
    let config = SimClusterConfig::new(4, 3, 60.0, LatencyModel::Fixed(1_000))
        .with_policy(GrantPolicy::Optimistic)
        .with_seed(9)
        .with_obs();
    let outcome = run(&scenario, slots, &config);
    let obs = outcome.obs.as_ref().expect("obs recorded");
    let metrics = &obs.metrics;
    assert_eq!(
        metrics.counter_value("sim.rollbacks"),
        outcome.rollbacks as u64
    );
    assert_eq!(
        metrics.counter_value("sim.supersedes"),
        outcome.supersedes as u64
    );
    assert_eq!(
        metrics.counter_value("sim.delivered_events"),
        outcome.delivered_events
    );
    assert_eq!(
        metrics.counter_value("master.executions"),
        outcome.executions as u64
    );
    // The summary is the human-facing view of the same registry — spot-check
    // that it actually renders the counters it claims to hold.
    let summary = obs.metrics.render();
    assert!(summary.contains("sim.delivered_events"));
}

#[test]
fn kernel_clock_rotates_session_windows_on_virtual_time() {
    // The kernel advances the shared session's virtual clock before every
    // delivery, and `set_virtual_nanos` rotates installed sliding windows —
    // so windowed SLOs evict on *simulation* time exactly as wall-clock
    // windows evict on wall time.  A fixed-latency ping-pong makes the
    // schedule exact: one 250 µs hop per window slice.
    use tcsc_obs::{ObsSession, Recorder};
    use tcsc_sim::{Component, ComponentId, Context, Message, Simulation};

    #[derive(Clone, Debug)]
    struct Tick(u64);
    impl Message for Tick {
        fn label(&self) -> &'static str {
            "tick"
        }
    }

    struct Bouncer {
        peer: ComponentId,
        session: Rc<ObsSession>,
        hops: u64,
    }
    impl Component<Tick> for Bouncer {
        fn on_message(&mut self, _: ComponentId, message: Tick, ctx: &mut Context<'_, Tick>) {
            let Tick(n) = message;
            // The kernel already advanced the virtual clock to this
            // delivery's time; the observation lands in the live slice.
            self.session.value("sim.hop_us", 10 + n);
            if n < self.hops {
                ctx.send(self.peer, Tick(n + 1));
            }
        }
    }

    let session = Rc::new(ObsSession::virtual_time());
    // Four live slices of 250 µs: samples older than 1 ms of virtual time
    // must have been evicted by the kernel's clock advances alone.
    session.install_window("sim.hop_us", 250_000, 4);
    let mut sim: Simulation<Tick> = Simulation::new(LatencyModel::Fixed(250), 5, false);
    sim.set_obs(Some(session.clone()));
    let a = sim.add_component(Box::new(Bouncer {
        peer: 1,
        session: session.clone(),
        hops: 12,
    }));
    let _b = sim.add_component(Box::new(Bouncer {
        peer: 0,
        session: session.clone(),
        hops: 12,
    }));
    sim.schedule(a, Tick(0), 0);
    sim.run();

    // Deliveries at 0, 250 µs, ..., 3000 µs record values 10..=22; the final
    // clock sits in slice 12, so slices 9..=12 (values 19..=22) are live.
    assert_eq!(sim.time(), 3_000, "12 fixed 250us hops");
    let metrics = session.metrics();
    let window = metrics.window("sim.hop_us").expect("window installed");
    assert_eq!(window.lifetime_count(), 13, "every hop was recorded");
    assert_eq!(window.windowed_count(), 4, "only the last 1ms stays live");
    assert_eq!(window.windowed_sum(), 19 + 20 + 21 + 22);
    assert_eq!(window.windowed().max(), 22);
    // The lifetime histogram fed by the same `value` calls never evicts.
    assert_eq!(metrics.histogram("sim.hop_us").unwrap().count(), 13);
}
