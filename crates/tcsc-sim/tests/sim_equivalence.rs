//! The simulated distributed runtime against the in-process engine:
//!
//! * zero-latency single-node runs must be **bit-identical** to
//!   [`AssignmentEngine::assign_batch`] — plans, conflicts, executions and
//!   cache counters;
//! * any node count × latency model × grant policy must commit the same
//!   results (latency moves messages, never decisions);
//! * the same seed must replay the identical event trace.

use std::rc::Rc;

use tcsc_assign::{AssignmentEngine, GrantPolicy, MultiTaskConfig, Objective};
use tcsc_core::EuclideanCost;
use tcsc_sim::{plan_hash, run_cluster, LatencyModel, SimBatch, SimClusterConfig};
use tcsc_workload::{ScenarioConfig, SpatialDistribution, StreamingConfig, TaskPlacement};

fn scenario() -> (tcsc_workload::Scenario, usize) {
    let cfg = ScenarioConfig::small()
        .with_num_tasks(10)
        .with_num_slots(30)
        .with_num_workers(150)
        .with_placement(TaskPlacement::Synthetic(SpatialDistribution::region_grid(
            3,
        )));
    let slots = cfg.num_slots;
    (cfg.build(), slots)
}

#[test]
fn zero_latency_single_node_is_bit_identical_to_the_engine() {
    let (scenario, slots) = scenario();
    let cost = EuclideanCost::default();
    let budget = 40.0;

    let dense = tcsc_index::WorkerIndex::build(&scenario.workers, slots, &scenario.domain);
    let mut engine = AssignmentEngine::borrowed(&dense, &cost, MultiTaskConfig::new(budget));
    let reference = engine.assign_batch(&scenario.tasks, Objective::SumQuality);

    let config =
        SimClusterConfig::new(1, 3, budget, LatencyModel::Zero).with_policy(GrantPolicy::Barrier);
    let outcome = run_cluster(
        &scenario.workers,
        slots,
        &scenario.domain,
        vec![SimBatch::immediate(scenario.tasks.clone())],
        Rc::new(EuclideanCost::default()),
        &config,
    );

    assert_eq!(outcome.assignment, reference.assignment, "plans diverged");
    assert_eq!(outcome.conflicts, reference.conflicts);
    assert_eq!(outcome.executions, reference.executions);
    assert_eq!(outcome.stats, reference.stats, "cache counters diverged");
    assert_eq!(
        outcome.finish_time_us, 0,
        "zero latency keeps virtual time 0"
    );
    assert_eq!(
        plan_hash(&outcome.assignment),
        plan_hash(&reference.assignment)
    );
    assert_eq!(outcome.shard_commitments, outcome.executions);
}

#[test]
fn node_count_latency_and_policy_never_change_the_committed_results() {
    let (scenario, slots) = scenario();
    let cost = EuclideanCost::default();
    let budget = 55.0;
    let dense = tcsc_index::WorkerIndex::build(&scenario.workers, slots, &scenario.domain);
    let mut engine = AssignmentEngine::borrowed(&dense, &cost, MultiTaskConfig::new(budget));
    let reference = engine.assign_batch(&scenario.tasks, Objective::SumQuality);

    let mut optimistic_rollback_seen = false;
    for nodes in [1, 2, 4, 9] {
        for latency in [
            LatencyModel::Zero,
            LatencyModel::Fixed(250),
            LatencyModel::Uniform { min: 20, max: 4000 },
        ] {
            for policy in [GrantPolicy::Barrier, GrantPolicy::Optimistic] {
                let config = SimClusterConfig::new(nodes, 3, budget, latency)
                    .with_policy(policy)
                    .with_seed(7 + nodes as u64);
                let outcome = run_cluster(
                    &scenario.workers,
                    slots,
                    &scenario.domain,
                    vec![SimBatch::immediate(scenario.tasks.clone())],
                    Rc::new(EuclideanCost::default()),
                    &config,
                );
                assert_eq!(
                    outcome.assignment, reference.assignment,
                    "plans diverged: {nodes} nodes, {latency:?}, {policy:?}"
                );
                assert_eq!(outcome.conflicts, reference.conflicts);
                assert_eq!(outcome.executions, reference.executions);
                assert_eq!(outcome.stats, reference.stats);
                assert_eq!(outcome.shard_commitments, outcome.executions);
                if policy == GrantPolicy::Barrier {
                    assert_eq!(outcome.rollbacks, 0, "the barrier master never speculates");
                } else if outcome.rollbacks > 0 {
                    optimistic_rollback_seen = true;
                }
            }
        }
    }
    assert!(
        optimistic_rollback_seen,
        "at least one latency configuration must exercise the rollback path"
    );
}

#[test]
fn same_seed_replays_the_identical_event_trace() {
    let (scenario, slots) = scenario();
    let run = |seed: u64| {
        let config = SimClusterConfig::new(3, 3, 35.0, LatencyModel::Uniform { min: 10, max: 900 })
            .with_seed(seed)
            .with_trace()
            .with_pings(500, 8)
            .with_service_us(40);
        run_cluster(
            &scenario.workers,
            slots,
            &scenario.domain,
            vec![SimBatch::immediate(scenario.tasks.clone())],
            Rc::new(EuclideanCost::default()),
            &config,
        )
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.trace, b.trace, "same seed must replay the same trace");
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.finish_time_us, b.finish_time_us);
    assert_eq!(a.delivered_events, b.delivered_events);
    assert!(a.worker_pings > 0, "worker pools must have pinged");
    // A different seed moves the timeline but never the committed results.
    let c = run(12);
    assert_eq!(a.assignment, c.assignment);
    assert_eq!(a.conflicts, c.conflicts);
}

#[test]
fn streaming_rounds_match_the_engine_drain_sequence() {
    // Timed arrival rounds against the engine's submit/drain path: occupancy
    // must persist across rounds identically.
    let streaming = StreamingConfig::region_partitioned(
        ScenarioConfig::small()
            .with_num_slots(24)
            .with_num_workers(120),
        3,
        3,
        4,
    )
    .build();
    let slots = streaming.config.base.num_slots;
    let cost = EuclideanCost::default();
    let budget = 30.0;

    let dense = tcsc_index::WorkerIndex::build(&streaming.workers, slots, &streaming.domain);
    let mut engine = AssignmentEngine::borrowed(&dense, &cost, MultiTaskConfig::new(budget));
    let mut reference_plans = Vec::new();
    let mut reference_conflicts = 0usize;
    let mut reference_executions = 0usize;
    for round in &streaming.rounds {
        engine.submit(round.clone());
        let outcome = engine.drain(Objective::SumQuality);
        reference_plans.extend(outcome.assignment.plans);
        reference_conflicts += outcome.conflicts;
        reference_executions += outcome.executions;
    }

    for (latency, policy) in [
        (LatencyModel::Zero, GrantPolicy::Barrier),
        (LatencyModel::Fixed(100), GrantPolicy::Optimistic),
    ] {
        let config = SimClusterConfig::new(3, 3, budget, latency).with_policy(policy);
        let batches = streaming
            .rounds
            .iter()
            .enumerate()
            .map(|(r, tasks)| SimBatch {
                at_us: r as u64 * 50_000,
                tasks: tasks.clone(),
            })
            .collect();
        let outcome = run_cluster(
            &streaming.workers,
            slots,
            &streaming.domain,
            batches,
            Rc::new(EuclideanCost::default()),
            &config,
        );
        assert_eq!(
            outcome.assignment.plans, reference_plans,
            "round plans diverged under {latency:?}/{policy:?}"
        );
        assert_eq!(outcome.conflicts, reference_conflicts);
        assert_eq!(outcome.executions, reference_executions);
    }
}

#[test]
fn policies_trade_time_and_traffic_but_never_results() {
    // The optimistic master overlaps conflict-loser refreshes with
    // outstanding heartbeats at the price of speculative traffic that may be
    // rolled back; which policy finishes earlier depends on the conflict
    // density and the latency model (the fig9d sweep quantifies it).  What
    // must hold unconditionally: identical committed results, an exercised
    // speculation path, and more traffic on the optimistic side (the undone
    // work is visible, never silently lost).
    let cfg = ScenarioConfig::small()
        .with_num_tasks(12)
        .with_num_slots(20)
        .with_num_workers(50)
        .with_seed(9);
    let slots = cfg.num_slots;
    let scenario = cfg.build();
    let run = |policy| {
        let config = SimClusterConfig::new(4, 3, 60.0, LatencyModel::Fixed(1_000))
            .with_policy(policy)
            .with_service_us(100);
        run_cluster(
            &scenario.workers,
            slots,
            &scenario.domain,
            vec![SimBatch::immediate(scenario.tasks.clone())],
            Rc::new(EuclideanCost::default()),
            &config,
        )
    };
    let barrier = run(GrantPolicy::Barrier);
    let optimistic = run(GrantPolicy::Optimistic);
    assert_eq!(barrier.assignment, optimistic.assignment);
    assert_eq!(barrier.conflicts, optimistic.conflicts);
    assert_eq!(barrier.committed, optimistic.committed);
    assert_eq!(barrier.rollbacks, 0);
    assert!(
        optimistic.rollbacks > 0,
        "this conflict-heavy workload must exercise speculation"
    );
    assert!(
        optimistic.delivered_events >= barrier.delivered_events,
        "speculative work shows up as extra traffic"
    );
    assert!(barrier.finish_time_us > 0 && optimistic.finish_time_us > 0);
}

#[test]
fn an_empty_arrival_schedule_yields_an_empty_outcome() {
    let (scenario, slots) = scenario();
    let outcome = run_cluster(
        &scenario.workers,
        slots,
        &scenario.domain,
        Vec::new(),
        Rc::new(EuclideanCost::default()),
        &SimClusterConfig::new(2, 3, 10.0, LatencyModel::Fixed(100)),
    );
    assert!(outcome.assignment.plans.is_empty());
    assert_eq!(outcome.executions, 0);
    assert_eq!(outcome.delivered_events, 0);
}
