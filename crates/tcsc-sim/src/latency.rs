//! Seeded network-latency models for the simulated links.
//!
//! Latency draws come from the simulation's single seeded generator (see
//! [`crate::kernel::Simulation`]), so a model with jitter still produces a
//! fully reproducible virtual timeline per seed.

use rand::rngs::StdRng;
use rand::Rng;

use crate::kernel::SimTime;

/// How long a message spends on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Ideal network: every delivery is instantaneous.  With zero latency the
    /// whole run happens at virtual time 0 in send order — the configuration
    /// the bit-identity tests pin against the in-process engine.
    Zero,
    /// Constant one-way latency in microseconds.
    Fixed(SimTime),
    /// Uniform latency in `[min, max]` microseconds (seeded jitter).
    Uniform {
        /// Minimum one-way latency.
        min: SimTime,
        /// Maximum one-way latency.
        max: SimTime,
    },
}

impl LatencyModel {
    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut StdRng) -> SimTime {
        match self {
            Self::Zero => 0,
            Self::Fixed(us) => *us,
            Self::Uniform { min, max } => {
                let (lo, hi) = (*min.min(max), *max.max(min));
                if lo == hi {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
        }
    }

    /// The mean latency of the model (for reporting).
    pub fn mean(&self) -> f64 {
        match self {
            Self::Zero => 0.0,
            Self::Fixed(us) => *us as f64,
            Self::Uniform { min, max } => (*min as f64 + *max as f64) / 2.0,
        }
    }

    /// A short human-readable label (for the fig9d artifact rows).
    pub fn describe(&self) -> String {
        match self {
            Self::Zero => "zero".into(),
            Self::Fixed(us) => format!("fixed:{us}us"),
            Self::Uniform { min, max } => format!("uniform:{min}-{max}us"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_bounds_and_reproduce() {
        let model = LatencyModel::Uniform { min: 50, max: 200 };
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let x = model.sample(&mut a);
            assert!((50..=200).contains(&x));
            assert_eq!(x, model.sample(&mut b));
        }
        assert_eq!(LatencyModel::Zero.sample(&mut a), 0);
        assert_eq!(LatencyModel::Fixed(75).sample(&mut a), 75);
    }

    #[test]
    fn descriptions_and_means() {
        assert_eq!(LatencyModel::Zero.describe(), "zero");
        assert_eq!(LatencyModel::Fixed(10).mean(), 10.0);
        assert_eq!(LatencyModel::Uniform { min: 10, max: 30 }.mean(), 20.0);
    }
}
