//! The region-node and worker-pool components.
//!
//! A [`RegionNode`] owns a subset of the spatial shards: for each owned shard
//! it holds a [`CandidateCache`] and a ledger partition of the sharded
//! occupancy, plus the [`TaskOwner`] states of every task homed in its
//! shards.  It answers the three message families of the runtime:
//!
//! * **checkout** — build task states from the shard caches, reconciled
//!   against the dispatcher's committed-occupancy snapshot;
//! * **candidate** — the [`tcsc_assign::MasterCommand`]
//!   compute/refresh/undo/execute protocol, executed by the shared
//!   [`TaskOwner`] (bit-identical to the thread driver);
//! * **claim** — replication of committed grants into the owning shard's
//!   ledger partition, with a double-grant authority check.
//!
//! A [`WorkerPool`] component emits periodic liveness heartbeats to its
//! region node until quiesced.

use std::collections::HashMap;
use std::rc::Rc;

use tcsc_assign::{CacheStats, CandidateCache, TaskOwner, TaskState, WorkerLedger};
use tcsc_assign::{MultiTaskConfig, WorkerEvent};
use tcsc_core::CostModel;
use tcsc_index::ShardedWorkerIndex;

use crate::kernel::{Component, ComponentId, Context, SimTime};
use crate::messages::NetMessage;

/// A region node owning a set of spatial shards.
pub struct RegionNode {
    index: Rc<ShardedWorkerIndex>,
    cost_model: Rc<dyn CostModel>,
    config: MultiTaskConfig,
    dispatcher: ComponentId,
    /// Per-owned-shard candidate caches.
    caches: HashMap<usize, CandidateCache>,
    /// Per-owned-shard ledger partitions (claim replication target).
    ledger: HashMap<usize, WorkerLedger>,
    owner: TaskOwner,
    stats: CacheStats,
    pings: u64,
    /// Claims that found the worker already occupied (must stay 0 — the
    /// master serialises grants; a violation means the protocol double
    /// granted).
    double_claims: usize,
    /// Local service time added to every reply (models node compute cost).
    service_us: SimTime,
}

impl RegionNode {
    /// A node serving `dispatcher`, computing against the replicated sharded
    /// index.
    pub fn new(
        index: Rc<ShardedWorkerIndex>,
        cost_model: Rc<dyn CostModel>,
        config: MultiTaskConfig,
        dispatcher: ComponentId,
        service_us: SimTime,
    ) -> Self {
        Self {
            index,
            cost_model,
            config,
            dispatcher,
            caches: HashMap::new(),
            ledger: HashMap::new(),
            owner: TaskOwner::default(),
            stats: CacheStats::default(),
            pings: 0,
            double_claims: 0,
            service_us,
        }
    }
}

impl Component<NetMessage> for RegionNode {
    fn on_message(
        &mut self,
        _from: ComponentId,
        message: NetMessage,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        match message {
            NetMessage::Checkout { entries, occupied } => {
                let mut snapshot = WorkerLedger::new();
                for (slot, workers) in occupied {
                    for w in workers {
                        snapshot.occupy(slot, w);
                    }
                }
                for (global, task) in entries {
                    let shard = self.index.spatial_shard_of(&task.location);
                    let cache = self.caches.entry(shard).or_default();
                    let candidates = cache.checkout(
                        &task,
                        self.index.as_ref(),
                        self.cost_model.as_ref(),
                        &snapshot,
                        &mut self.stats,
                    );
                    self.owner.insert(
                        global,
                        TaskState::from_candidates(&task, candidates, &self.config),
                    );
                }
            }
            NetMessage::Command(command) => {
                // For Execute commands, capture the executed worker's
                // location before the state consumes the candidate — the
                // dispatcher routes the claim replication by it.
                let location = match &command {
                    tcsc_assign::MasterCommand::Execute { task, slot } => {
                        self.owner.planned_location(*task, *slot)
                    }
                    _ => None,
                };
                if let Some(event) =
                    self.owner
                        .handle(command, self.index.as_ref(), self.cost_model.as_ref())
                {
                    let worker_location = match &event {
                        WorkerEvent::Executed { .. } => location,
                        WorkerEvent::Heartbeat { .. } => None,
                    };
                    ctx.send_after(
                        self.dispatcher,
                        NetMessage::Event {
                            event,
                            worker_location,
                        },
                        self.service_us,
                    );
                }
            }
            NetMessage::Claim {
                shard,
                slot,
                worker,
            } => {
                let fresh = self.ledger.entry(shard).or_default().occupy(slot, worker);
                if !fresh {
                    self.double_claims += 1;
                }
            }
            NetMessage::WorkerPing { .. } => {
                self.pings += 1;
            }
            NetMessage::Finish => {
                assert_eq!(
                    self.double_claims, 0,
                    "the master must never double-grant a (slot, worker)"
                );
                let owner = std::mem::take(&mut self.owner);
                // Fold the owned states' commit-tail refresh accounting into
                // the node's counters before shipping them to the dispatcher.
                self.stats.absorb_refresh(&owner.refresh_stats());
                let commitments: usize = self.ledger.values().map(WorkerLedger::len).sum();
                ctx.send(
                    self.dispatcher,
                    NetMessage::Plans {
                        plans: owner.into_plans(),
                        stats: self.stats,
                        commitments,
                        pings: self.pings,
                    },
                );
            }
            _ => unreachable!("unexpected message at a region node"),
        }
    }
}

/// A worker-pool component: emits one liveness ping per interval to its
/// region node until quiesced.
pub struct WorkerPool {
    node: ComponentId,
    workers: usize,
    interval_us: SimTime,
    active: bool,
    /// Remaining ticks (bounds the event count even if quiescing is late).
    remaining: u32,
}

impl WorkerPool {
    /// A pool of `workers` workers pinging `node` every `interval_us`, at
    /// most `max_pings` times.
    pub fn new(node: ComponentId, workers: usize, interval_us: SimTime, max_pings: u32) -> Self {
        Self {
            node,
            workers,
            interval_us,
            active: true,
            remaining: max_pings,
        }
    }
}

impl Component<NetMessage> for WorkerPool {
    fn on_message(
        &mut self,
        _from: ComponentId,
        message: NetMessage,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        match message {
            NetMessage::Tick => {
                if self.active && self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send(
                        self.node,
                        NetMessage::WorkerPing {
                            workers: self.workers,
                        },
                    );
                    if self.remaining > 0 {
                        let me = ctx.self_id();
                        ctx.send_after(me, NetMessage::Tick, self.interval_us);
                    }
                }
            }
            NetMessage::Quiesce => {
                self.active = false;
            }
            _ => unreachable!("unexpected message at a worker pool"),
        }
    }
}
