//! # tcsc-sim
//!
//! A deterministic discrete-event simulation of a **distributed TCSC
//! runtime**, following the component/event-queue architecture of the dslab
//! simulation framework:
//!
//! * [`kernel`] — the simulation kernel: virtual clock, binary-heap event
//!   queue with stable `(time, seq)` ordering, FIFO links, and the
//!   [`kernel::Component`] trait with typed message delivery;
//! * [`latency`] — seeded network-latency models (zero / fixed / uniform
//!   jitter), reproducible per seed;
//! * [`messages`] — the runtime's network protocol, wrapping the
//!   master/owner protocol of `tcsc-assign::multi::protocol`;
//! * [`node`] — [`node::RegionNode`] components owning spatial-shard
//!   candidate caches, ledger partitions and task states, plus
//!   [`node::WorkerPool`] components emitting liveness heartbeats;
//! * [`dispatcher`] — the [`dispatcher::Dispatcher`] component routing tasks
//!   by `spatial_shard_of` and driving the (barrier or optimistic
//!   non-blocking) task-parallel master over the simulated network;
//! * [`cluster`] — one-call assembly: build the cluster, feed timed task
//!   arrivals, run to quiescence, collect the [`cluster::SimOutcome`].
//!
//! # Guarantees
//!
//! * **Determinism** — same seed, same inputs ⇒ identical event trace,
//!   plans, conflicts and executions, for every latency model.
//! * **Engine bit-identity** — the committed results (plans, conflicts,
//!   executions, cache counters) are identical to the in-process
//!   [`tcsc_assign::AssignmentEngine`] for *any* node count, latency model
//!   and grant policy; with zero latency and a single node the run degrades
//!   to exactly the engine's loop.  Locked in by `tests/sim_equivalence.rs`.
//!
//! The simulated runtime is the staging ground for a real multi-process
//! deployment: the message protocol, the shard routing and the master's
//! optimistic concurrency control are exercised here against the exact
//! serial results before any real networking exists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod dispatcher;
pub mod kernel;
pub mod latency;
pub mod messages;
pub mod node;

pub use cluster::{plan_hash, run_cluster, SimBatch, SimClusterConfig, SimOutcome};
pub use dispatcher::{Dispatcher, DispatcherReport};
pub use kernel::{Component, ComponentId, Context, Message, SimTime, Simulation, TraceRecord};
pub use latency::LatencyModel;
pub use messages::NetMessage;
pub use node::{RegionNode, WorkerPool};
pub use tcsc_assign::GrantPolicy;
