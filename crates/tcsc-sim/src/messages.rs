//! The network protocol of the simulated distributed TCSC runtime.
//!
//! The dispatcher and the region nodes exchange exactly the master/owner
//! protocol of `tcsc-assign::multi::protocol` ([`MasterCommand`] /
//! [`WorkerEvent`]), wrapped in envelope variants that add what a distributed
//! deployment needs on top: batch checkout with an occupancy snapshot, claim
//! replication to the worker's owning shard, plan collection, and the worker
//! pools' liveness pings.

use tcsc_assign::{CacheStats, MasterCommand, WorkerEvent};
use tcsc_core::{AssignmentPlan, Location, SlotIndex, Task, WorkerId};

use crate::kernel::Message;

/// One message of the simulated runtime.
#[derive(Debug, Clone)]
pub enum NetMessage {
    /// Harness → dispatcher: a batch of task arrivals (global indices).
    SubmitBatch {
        /// `(global task index, task)` pairs, in arrival order.
        entries: Vec<(usize, Task)>,
    },
    /// Dispatcher → region node: check the listed tasks out of the node's
    /// shard caches, reconciling against the master's committed-occupancy
    /// snapshot (non-empty from the second round on).
    Checkout {
        /// `(global task index, task)` pairs homed in this node's shards.
        entries: Vec<(usize, Task)>,
        /// Committed `(slot, occupied workers)` snapshot.
        occupied: Vec<(SlotIndex, Vec<WorkerId>)>,
    },
    /// Dispatcher → region node: one master command for an owned task
    /// (task indices are *global*; the dispatcher translates).
    Command(MasterCommand),
    /// Region node → dispatcher: one owner event (heartbeat or execution
    /// confirmation), with the executed worker's location attached so the
    /// dispatcher can route the claim replication to the owning shard.
    Event {
        /// The protocol event (global task index).
        event: WorkerEvent,
        /// Location of the executed worker (for `Executed` events).
        worker_location: Option<Location>,
    },
    /// Dispatcher → owning region node: replicate a committed claim into the
    /// shard's ledger partition (the authority check for double grants).
    Claim {
        /// The spatial shard owning the worker.
        shard: usize,
        /// The claimed slot.
        slot: SlotIndex,
        /// The claimed worker.
        worker: WorkerId,
    },
    /// Dispatcher → region node: the run is over; report plans and counters.
    Finish,
    /// Region node → dispatcher: final per-task plans and node counters.
    Plans {
        /// `(global task index, plan)` pairs.
        plans: Vec<(usize, AssignmentPlan)>,
        /// The node's accumulated candidate-cache counters.
        stats: CacheStats,
        /// Commitments recorded in the node's ledger partitions.
        commitments: usize,
        /// Worker-pool liveness pings the node received.
        pings: u64,
    },
    /// Worker pool → its region node: liveness heartbeat.
    WorkerPing {
        /// Number of workers the pool reports for.
        workers: usize,
    },
    /// Worker pool → itself: periodic timer.
    Tick,
    /// Dispatcher → worker pool: stop ticking (the run is over).
    Quiesce,
}

impl Message for NetMessage {
    fn label(&self) -> &'static str {
        match self {
            Self::SubmitBatch { .. } => "submit",
            Self::Checkout { .. } => "checkout",
            Self::Command(MasterCommand::Compute { .. }) => "compute",
            Self::Command(MasterCommand::Refresh { .. }) => "refresh",
            Self::Command(MasterCommand::UndoRefresh { .. }) => "undo-refresh",
            Self::Command(MasterCommand::Execute { .. }) => "execute",
            Self::Event {
                event: WorkerEvent::Heartbeat { .. },
                ..
            } => "heartbeat",
            Self::Event {
                event: WorkerEvent::Executed { .. },
                ..
            } => "executed",
            Self::Claim { .. } => "claim",
            Self::Finish => "finish",
            Self::Plans { .. } => "plans",
            Self::WorkerPing { .. } => "worker-ping",
            Self::Tick => "tick",
            Self::Quiesce => "quiesce",
        }
    }
}
