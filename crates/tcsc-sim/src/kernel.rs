//! The discrete-event simulation kernel: a virtual clock, a binary-heap
//! event queue with stable `(time, seq)` ordering, and a [`Component`] trait
//! with typed message delivery (the dslab-style component/event split).
//!
//! # Ordering guarantees
//!
//! * Events are delivered in ascending virtual time; **ties are broken by
//!   the send sequence number**, so two events scheduled for the same instant
//!   are delivered in the order they were sent — the queue order is a total
//!   order and every run of the same seed and inputs replays it exactly.
//! * Links are **FIFO**: a message from component `a` to component `b` is
//!   never delivered before an earlier message of the same `(a, b)` pair,
//!   even when the latency model samples a shorter delay for it (the delivery
//!   time is clamped to the link's previous delivery).  The distributed
//!   runtime's protocol relies on this — e.g. an `UndoRefresh` must not
//!   overtake the `Refresh` it undoes.
//! * Latency samples are drawn from one seeded generator in delivery order,
//!   so the virtual timeline itself is a pure function of `(seed, inputs)`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tcsc_obs::{ObsSession, Recorder, Scope};

use crate::latency::LatencyModel;

/// Identifier of a component within one simulation.
pub type ComponentId = usize;

/// Virtual time, in microseconds since the simulation start.
pub type SimTime = u64;

/// The pseudo-component id used for externally scheduled events (workload
/// arrivals injected by the harness rather than sent by a component).
pub const EXTERNAL: ComponentId = usize::MAX;

/// A typed simulation message.
pub trait Message: Clone {
    /// A short static label for the trace (message kind, not payload).
    fn label(&self) -> &'static str;
}

/// A simulated component: reacts to delivered messages by mutating its own
/// state and sending further messages through the [`Context`].
pub trait Component<M: Message> {
    /// Handles one delivered message.
    fn on_message(&mut self, from: ComponentId, message: M, ctx: &mut Context<'_, M>);
}

/// One delivered event, as recorded in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Delivery time.
    pub time: SimTime,
    /// Global send sequence number (the tie-break).
    pub seq: u64,
    /// Sender (or [`EXTERNAL`]).
    pub src: ComponentId,
    /// Receiver.
    pub dst: ComponentId,
    /// Message label.
    pub label: &'static str,
}

/// The send-side API handed to a component while it processes a message.
pub struct Context<'a, M: Message> {
    now: SimTime,
    self_id: ComponentId,
    outbox: &'a mut Vec<(ComponentId, M, SimTime)>,
}

impl<M: Message> Context<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component processing the message.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Sends a message (network latency is added by the kernel).
    pub fn send(&mut self, dst: ComponentId, message: M) {
        self.send_after(dst, message, 0);
    }

    /// Sends a message after an extra local delay (service time) on top of
    /// the network latency.  Sends to `self_id` are local timers: they pay
    /// `extra` only, never a latency draw.
    pub fn send_after(&mut self, dst: ComponentId, message: M, extra: SimTime) {
        self.outbox.push((dst, message, extra));
    }
}

/// One scheduled event in the queue.
struct Scheduled<M> {
    time: SimTime,
    seq: u64,
    src: ComponentId,
    dst: ComponentId,
    message: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the binary heap is a max-heap, we want the earliest
        // `(time, seq)` on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The deterministic discrete-event simulation.
pub struct Simulation<M: Message> {
    clock: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    components: Vec<Option<Box<dyn Component<M>>>>,
    latency: LatencyModel,
    rng: StdRng,
    /// Last scheduled delivery time per `(src, dst)` link (FIFO clamp).
    last_delivery: HashMap<(ComponentId, ComponentId), SimTime>,
    delivered: u64,
    record_trace: bool,
    trace: Vec<TraceRecord>,
    /// Optional shared observability session.  The kernel drives its virtual
    /// clock (`set_virtual_nanos` before every delivery) and emits
    /// transport-scope send/recv events plus an execute span per delivery;
    /// components holding the same `Rc` record their own events against the
    /// already-advanced clock.  One predictable branch per event when `None`.
    obs: Option<Rc<ObsSession>>,
}

impl<M: Message> Simulation<M> {
    /// A simulation over the given latency model, seeded for reproducible
    /// latency draws.  `record_trace` retains the full delivery trace (used
    /// by the determinism tests; costs memory proportional to the event
    /// count).
    pub fn new(latency: LatencyModel, seed: u64, record_trace: bool) -> Self {
        Self {
            clock: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            components: Vec::new(),
            latency,
            rng: StdRng::seed_from_u64(seed),
            last_delivery: HashMap::new(),
            delivered: 0,
            record_trace,
            trace: Vec::new(),
            obs: None,
        }
    }

    /// Attaches a shared observability session (see the `obs` field docs).
    /// Call before [`Simulation::run`]; the session should be created with
    /// `ObsSession::virtual_time()` so events carry simulation timestamps.
    pub fn set_obs(&mut self, obs: Option<Rc<ObsSession>>) {
        self.obs = obs;
    }

    /// Registers a component, returning its id.
    pub fn add_component(&mut self, component: Box<dyn Component<M>>) -> ComponentId {
        self.components.push(Some(component));
        self.components.len() - 1
    }

    /// Schedules an external event (no latency added) for delivery at `at`.
    pub fn schedule(&mut self, dst: ComponentId, message: M, at: SimTime) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            src: EXTERNAL,
            dst,
            message,
        });
    }

    /// Runs the simulation to quiescence (empty event queue).
    pub fn run(&mut self) {
        let mut outbox: Vec<(ComponentId, M, SimTime)> = Vec::new();
        while let Some(event) = self.queue.pop() {
            debug_assert!(event.time >= self.clock, "time must not run backwards");
            self.clock = event.time;
            self.delivered += 1;
            if self.record_trace {
                self.trace.push(TraceRecord {
                    time: event.time,
                    seq: event.seq,
                    src: event.src,
                    dst: event.dst,
                    label: event.message.label(),
                });
            }
            if let Some(obs) = &self.obs {
                // SimTime is microseconds; the session clock is nanoseconds.
                obs.set_virtual_nanos(event.time.saturating_mul(1_000));
                obs.instant(
                    Scope::Transport,
                    event.message.label(),
                    event.src as u64,
                    event.dst as u64,
                    1, // direction: recv
                );
                obs.begin("sim.execute", event.dst as u64);
            }
            let mut component = self.components[event.dst]
                .take()
                .expect("components never send to themselves re-entrantly");
            let mut ctx = Context {
                now: self.clock,
                self_id: event.dst,
                outbox: &mut outbox,
            };
            component.on_message(event.src, event.message, &mut ctx);
            self.components[event.dst] = Some(component);
            if let Some(obs) = &self.obs {
                obs.end("sim.execute", event.dst as u64);
            }
            for (dst, message, extra) in outbox.drain(..) {
                // Self-sends are local timers, not network messages: they pay
                // the requested delay only (no latency draw is consumed, so a
                // component's tick cadence never perturbs the latency samples
                // of protocol messages).
                let latency = if dst == event.dst {
                    0
                } else {
                    self.latency.sample(&mut self.rng)
                };
                let mut deliver_at = self.clock + extra + latency;
                // FIFO clamp: never deliver before an earlier message of the
                // same link (ties resolve by seq = send order).
                let link = (event.dst, dst);
                if let Some(last) = self.last_delivery.get(&link) {
                    deliver_at = deliver_at.max(*last);
                }
                self.last_delivery.insert(link, deliver_at);
                if let Some(obs) = &self.obs {
                    obs.instant(
                        Scope::Transport,
                        message.label(),
                        event.dst as u64,
                        dst as u64,
                        0, // direction: send
                    );
                }
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Scheduled {
                    time: deliver_at,
                    seq,
                    src: event.dst,
                    dst,
                    message,
                });
            }
        }
    }

    /// The current virtual time (after [`Simulation::run`]: the delivery time
    /// of the last event).
    pub fn time(&self) -> SimTime {
        self.clock
    }

    /// Number of delivered events.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The recorded delivery trace (empty unless `record_trace` was set).
    pub fn trace(&self) -> &[TraceRecord] {
        &self.trace
    }

    /// Consumes the simulation, returning the trace.
    pub fn into_trace(self) -> Vec<TraceRecord> {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Ping {
        Ping(u32),
        Pong(u32),
    }

    impl Message for Ping {
        fn label(&self) -> &'static str {
            match self {
                Ping::Ping(_) => "ping",
                Ping::Pong(_) => "pong",
            }
        }
    }

    struct Echo {
        peer: ComponentId,
        received: Vec<(SimTime, u32)>,
        bounces: u32,
    }

    impl Component<Ping> for Echo {
        fn on_message(&mut self, _from: ComponentId, message: Ping, ctx: &mut Context<'_, Ping>) {
            match message {
                Ping::Ping(n) => {
                    self.received.push((ctx.now(), n));
                    if n < self.bounces {
                        ctx.send(self.peer, Ping::Pong(n + 1));
                    }
                }
                Ping::Pong(n) => {
                    self.received.push((ctx.now(), n));
                    if n < self.bounces {
                        ctx.send(self.peer, Ping::Ping(n + 1));
                    }
                }
            }
        }
    }

    fn run_pair(latency: LatencyModel, seed: u64) -> (SimTime, Vec<TraceRecord>) {
        let mut sim: Simulation<Ping> = Simulation::new(latency, seed, true);
        let a = sim.add_component(Box::new(Echo {
            peer: 1,
            received: Vec::new(),
            bounces: 8,
        }));
        let _b = sim.add_component(Box::new(Echo {
            peer: 0,
            received: Vec::new(),
            bounces: 8,
        }));
        sim.schedule(a, Ping::Ping(0), 0);
        sim.run();
        (sim.time(), sim.into_trace())
    }

    #[test]
    fn same_seed_replays_the_identical_trace() {
        let (t1, trace1) = run_pair(LatencyModel::Uniform { min: 10, max: 500 }, 42);
        let (t2, trace2) = run_pair(LatencyModel::Uniform { min: 10, max: 500 }, 42);
        assert_eq!(t1, t2);
        assert_eq!(trace1, trace2);
        assert_eq!(trace1.len(), 9, "ping + 8 bounces");
    }

    #[test]
    fn zero_latency_orders_by_sequence() {
        let (t, trace) = run_pair(LatencyModel::Zero, 7);
        assert_eq!(t, 0, "zero latency keeps the virtual clock at 0");
        let seqs: Vec<u64> = trace.iter().map(|r| r.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "same-instant events deliver in send order");
    }

    #[test]
    fn links_are_fifo_under_random_latency() {
        // A sender fires many messages back to back; the receiver must see
        // them in send order even when later messages sample lower latency.
        struct Burst {
            peer: ComponentId,
        }
        impl Component<Ping> for Burst {
            fn on_message(&mut self, _: ComponentId, _: Ping, ctx: &mut Context<'_, Ping>) {
                for n in 0..50 {
                    ctx.send(self.peer, Ping::Ping(n));
                }
            }
        }
        struct Sink {
            seen: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        }
        impl Component<Ping> for Sink {
            fn on_message(&mut self, _: ComponentId, message: Ping, _: &mut Context<'_, Ping>) {
                if let Ping::Ping(n) = message {
                    self.seen.borrow_mut().push(n);
                }
            }
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim: Simulation<Ping> =
            Simulation::new(LatencyModel::Uniform { min: 1, max: 1000 }, 99, false);
        let sink = sim.add_component(Box::new(Sink { seen: seen.clone() }));
        let burst = sim.add_component(Box::new(Burst { peer: sink }));
        sim.schedule(burst, Ping::Ping(0), 0);
        sim.run();
        assert_eq!(*seen.borrow(), (0..50).collect::<Vec<_>>());
    }
}
