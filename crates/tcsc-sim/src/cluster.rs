//! Cluster assembly and the one-call run harness: wire a dispatcher, `n`
//! region nodes and their worker pools over a simulated network, feed task
//! arrivals, run to quiescence and collect the [`SimOutcome`].

use std::cell::RefCell;
use std::rc::Rc;

use tcsc_assign::{CacheStats, CommittedExecution, GrantPolicy, MultiTaskConfig};
use tcsc_core::{CostModel, Domain, MultiAssignment, Task, WorkerPool as CoreWorkerPool};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex};
use tcsc_obs::{ObsReport, ObsSession, Recorder, Scope};

use crate::dispatcher::{Dispatcher, DispatcherReport};
use crate::kernel::{SimTime, Simulation, TraceRecord};
use crate::latency::LatencyModel;
use crate::messages::NetMessage;
use crate::node::{RegionNode, WorkerPool};

/// Configuration of one simulated cluster run.
#[derive(Debug, Clone)]
pub struct SimClusterConfig {
    /// Number of region nodes (spatial shards are striped over them).
    pub nodes: usize,
    /// The spatial shard grid (shared by the replicated index, the node
    /// ledger partitions and the dispatcher's routing).
    pub grid: ShardGridConfig,
    /// The master's grant policy.
    pub policy: GrantPolicy,
    /// Assignment parameters (budget, `k`, `ts`, ...).
    pub assignment: MultiTaskConfig,
    /// One-way network latency between components.
    pub latency: LatencyModel,
    /// Node service time added to every command reply, in microseconds.
    pub service_us: SimTime,
    /// Worker-pool liveness ping period (0 disables the pools' ticking).
    pub ping_interval_us: SimTime,
    /// Maximum number of pings per pool (bounds the event count).
    pub max_pings: u32,
    /// Seed of the latency draws.
    pub seed: u64,
    /// Whether to retain the full delivery trace (determinism tests).
    pub record_trace: bool,
    /// Whether to record a virtual-time observability trace: a shared
    /// [`ObsSession`] is driven by the kernel clock, the dispatcher's master
    /// records its policy events through it, and the outcome carries the
    /// [`ObsReport`] (merged events, metrics, and the logical digest).
    pub record_obs: bool,
}

impl SimClusterConfig {
    /// A cluster of `nodes` nodes over a `regions x regions` shard grid with
    /// the given latency, using defaults for everything else.
    pub fn new(nodes: usize, regions: usize, budget: f64, latency: LatencyModel) -> Self {
        Self {
            nodes: nodes.max(1),
            grid: ShardGridConfig::new(regions.max(1), regions.max(1)),
            policy: GrantPolicy::Optimistic,
            assignment: MultiTaskConfig::new(budget),
            latency,
            service_us: 0,
            ping_interval_us: 0,
            max_pings: 0,
            seed: 42,
            record_trace: false,
            record_obs: false,
        }
    }

    /// Overrides the grant policy.
    pub fn with_policy(mut self, policy: GrantPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the latency seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables worker-pool liveness pings.
    pub fn with_pings(mut self, interval_us: SimTime, max_pings: u32) -> Self {
        self.ping_interval_us = interval_us;
        self.max_pings = max_pings;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enables virtual-time observability recording (see
    /// [`SimClusterConfig::record_obs`]).
    pub fn with_obs(mut self) -> Self {
        self.record_obs = true;
        self
    }

    /// Sets the per-command node service time.
    pub fn with_service_us(mut self, service_us: SimTime) -> Self {
        self.service_us = service_us;
        self
    }
}

/// One timed batch of task arrivals.
#[derive(Debug, Clone)]
pub struct SimBatch {
    /// Arrival time of the batch at the dispatcher.
    pub at_us: SimTime,
    /// The arriving tasks, in submission order.
    pub tasks: Vec<Task>,
}

impl SimBatch {
    /// A batch arriving at virtual time 0.
    pub fn immediate(tasks: Vec<Task>) -> Self {
        Self { at_us: 0, tasks }
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-task plans, in global submission order.
    pub assignment: MultiAssignment,
    /// Worker conflicts across all batches.
    pub conflicts: usize,
    /// Committed executions across all batches.
    pub executions: usize,
    /// Rolled-back provisional grants (0 under the barrier policy).
    pub rollbacks: usize,
    /// Provisional grants superseded by a late heartbeat winning the serial
    /// tie-break (a subset of `rollbacks`; 0 under the barrier policy).
    pub supersedes: usize,
    /// Candidate-cache counters (comparable to the engines').
    pub stats: CacheStats,
    /// Committed executions in grant order (global task indices).
    pub committed: Vec<CommittedExecution>,
    /// Virtual time at which the last plan arrived at the dispatcher.
    pub finish_time_us: SimTime,
    /// Total delivered events.
    pub delivered_events: u64,
    /// Worker-pool liveness pings observed by the nodes.
    pub worker_pings: u64,
    /// Commitments replicated into the nodes' shard-ledger partitions
    /// (equals `executions` when the claim replication is consistent).
    pub shard_commitments: usize,
    /// The full delivery trace (empty unless trace recording was enabled).
    pub trace: Vec<TraceRecord>,
    /// The observability report (`None` unless `record_obs` was enabled):
    /// the merged virtual-time event stream, the metrics snapshot and the
    /// logical digest — same seed ⇒ same digest across node counts, latency
    /// models and grant policies.
    pub obs: Option<ObsReport>,
}

impl SimOutcome {
    /// Summation quality over all plans.
    pub fn sum_quality(&self) -> f64 {
        self.assignment.sum_quality()
    }
}

/// A stable 64-bit FNV-1a hash over an assignment's plans: task ids, slot /
/// worker sequences and cost bit patterns.  Used by the fig9d artifact and
/// the CI gate to compare the simulated runtime against the in-process
/// engine without serialising full plans.
pub fn plan_hash(assignment: &MultiAssignment) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |value: u64| {
        for byte in value.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for plan in &assignment.plans {
        eat(plan.task.0 as u64);
        eat(plan.num_slots as u64);
        eat(plan.quality.to_bits());
        for exec in &plan.executions {
            eat(exec.slot as u64);
            eat(exec.worker.0 as u64);
            eat(exec.cost.to_bits());
        }
    }
    h
}

/// Builds the cluster, feeds the batches, runs to quiescence and returns the
/// outcome.
///
/// The replicated [`ShardedWorkerIndex`] is built once from the pool and
/// shared (read-only) by every node — the simulated stand-in for each node
/// holding a copy of the immutable index.
pub fn run_cluster(
    workers: &CoreWorkerPool,
    num_slots: usize,
    domain: &Domain,
    batches: Vec<SimBatch>,
    cost_model: Rc<dyn CostModel>,
    config: &SimClusterConfig,
) -> SimOutcome {
    assert_eq!(
        config.assignment.accounting,
        tcsc_assign::ConflictAccounting::V1,
        "the simulated cluster replays the V1 eager conflict contract (its \
         master/shard message protocol refreshes losers at commit time); run \
         it with ConflictAccounting::V1 or use the in-process engines for V2",
    );
    if batches.is_empty() {
        // Nothing arrives, nothing runs: an empty outcome, not a stalled
        // dispatcher waiting for batches that never come.
        return SimOutcome {
            assignment: MultiAssignment::default(),
            conflicts: 0,
            executions: 0,
            rollbacks: 0,
            supersedes: 0,
            stats: tcsc_assign::CacheStats::default(),
            committed: Vec::new(),
            finish_time_us: 0,
            delivered_events: 0,
            worker_pings: 0,
            shard_commitments: 0,
            trace: Vec::new(),
            obs: None,
        };
    }
    let index = Rc::new(ShardedWorkerIndex::build(
        workers,
        num_slots,
        domain,
        config.grid,
    ));
    let mut sim: Simulation<NetMessage> =
        Simulation::new(config.latency, config.seed, config.record_trace);
    let obs_session = config
        .record_obs
        .then(|| Rc::new(ObsSession::virtual_time()));
    sim.set_obs(obs_session.clone());

    // Component wiring: the dispatcher's id is allocated first so the nodes
    // can address it; its construction needs the node ids, so it is
    // registered through a placeholder-free two-phase add (nodes first,
    // dispatcher last, nodes learn the dispatcher id up front).
    let dispatcher_id = config.nodes + config.nodes; // nodes + pools precede it
    let mut node_ids = Vec::with_capacity(config.nodes);
    for _ in 0..config.nodes {
        let id = sim.add_component(Box::new(RegionNode::new(
            index.clone(),
            cost_model.clone(),
            config.assignment,
            dispatcher_id,
            config.service_us,
        )));
        node_ids.push(id);
    }
    let per_pool = workers.len().div_ceil(config.nodes.max(1));
    let mut pool_ids = Vec::with_capacity(config.nodes);
    for &node in &node_ids {
        let id = sim.add_component(Box::new(WorkerPool::new(
            node,
            per_pool,
            config.ping_interval_us.max(1),
            config.max_pings,
        )));
        pool_ids.push(id);
    }
    let outbox: Rc<RefCell<Option<DispatcherReport>>> = Rc::new(RefCell::new(None));
    let actual_dispatcher = sim.add_component(Box::new(Dispatcher::new(
        index.clone(),
        config.policy,
        config.assignment.budget,
        node_ids,
        pool_ids.clone(),
        batches.len(),
        outbox.clone(),
        obs_session.clone(),
    )));
    assert_eq!(
        actual_dispatcher, dispatcher_id,
        "component registration order is fixed"
    );

    // Kick the worker pools and feed the arrival schedule.
    if config.ping_interval_us > 0 && config.max_pings > 0 {
        for &pool in &pool_ids {
            sim.schedule(pool, NetMessage::Tick, config.ping_interval_us);
        }
    }
    let mut next_global = 0usize;
    for batch in batches {
        let entries: Vec<(usize, Task)> = batch
            .tasks
            .into_iter()
            .map(|task| {
                let idx = next_global;
                next_global += 1;
                (idx, task)
            })
            .collect();
        sim.schedule(
            dispatcher_id,
            NetMessage::SubmitBatch { entries },
            batch.at_us,
        );
    }

    sim.run();
    let report = outbox
        .borrow_mut()
        .take()
        .expect("the dispatcher reports when every node returned its plans");
    let delivered_events = sim.delivered();
    let trace = sim.into_trace();

    let plans = report.plans.into_iter().map(|(_, plan)| plan).collect();
    let assignment = MultiAssignment::new(plans);

    // Emit the logical projection the digest hashes: the committed execution
    // sequence (in grant order), the run totals and the plan hash.  These
    // are bit-identical across node counts, latency models and grant
    // policies by the sim-equivalence locks, so the digest is too — while
    // the transport/policy events recorded above legitimately differ.
    let obs = obs_session.map(|session| {
        session.set_virtual_nanos(report.finish_time_us.saturating_mul(1_000));
        for c in &report.committed {
            session.instant(
                Scope::Logical,
                "logical.execute",
                c.task as u64,
                ((u64::from(c.worker.0)) << 32) | c.slot as u64,
                c.cost.to_bits(),
            );
        }
        session.instant(
            Scope::Logical,
            "logical.totals",
            report.executions as u64,
            report.conflicts as u64,
            plan_hash(&assignment),
        );
        session.counter("sim.rollbacks", report.rollbacks as u64);
        session.counter("sim.supersedes", report.supersedes as u64);
        session.counter("sim.delivered_events", delivered_events);
        session.value("sim.finish_time_us", report.finish_time_us);
        session.report()
    });

    SimOutcome {
        assignment,
        conflicts: report.conflicts,
        executions: report.executions,
        rollbacks: report.rollbacks,
        supersedes: report.supersedes,
        stats: report.stats,
        committed: report.committed,
        finish_time_us: report.finish_time_us,
        delivered_events,
        worker_pings: report.worker_pings,
        shard_commitments: report.shard_commitments,
        trace,
        obs,
    }
}
