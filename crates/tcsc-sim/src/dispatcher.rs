//! The dispatcher component: routes task batches to region nodes by
//! `spatial_shard_of` and drives the task-parallel master state machine
//! ([`TaskMaster`]) over the simulated network.
//!
//! The dispatcher is deliberately thin: every grant/rollback decision lives
//! in the shared, fuzz-verified machine of `tcsc-assign::multi::protocol`;
//! this component only translates between batch-local and global task
//! indices, snapshots committed occupancy for checkouts, and replicates
//! committed claims to the worker's owning shard.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use tcsc_assign::{
    CacheStats, CommittedExecution, GrantPolicy, MasterCommand, TaskMaster, WorkerEvent,
    WorkerLedger,
};
use tcsc_core::{AssignmentPlan, Task};
use tcsc_index::ShardedWorkerIndex;
use tcsc_obs::ObsSession;

use crate::kernel::{Component, ComponentId, Context, SimTime};
use crate::messages::NetMessage;

/// One in-flight batch: the master machine plus the local↔global index maps.
/// The master carries the sim's shared recorder handle (`None` when trace
/// recording is off — one predictable branch per event).
struct Batch {
    master: TaskMaster<Option<Rc<ObsSession>>>,
    global: Vec<usize>,
    /// Global → batch-local index (events arrive with global indices).
    local_of: HashMap<usize, usize>,
}

/// What the dispatcher hands back to the harness when the run completes.
#[derive(Debug, Default, Clone)]
pub struct DispatcherReport {
    /// Per-task plans in ascending global index.
    pub plans: Vec<(usize, AssignmentPlan)>,
    /// Committed executions in grant order (global task indices).
    pub committed: Vec<CommittedExecution>,
    /// Worker conflicts across all batches.
    pub conflicts: usize,
    /// Committed executions across all batches.
    pub executions: usize,
    /// Rolled-back provisional grants (0 under the barrier policy).
    pub rollbacks: usize,
    /// Provisional grants superseded by a late heartbeat winning the serial
    /// tie-break (a subset of `rollbacks`; 0 under the barrier policy).
    pub supersedes: usize,
    /// Candidate-cache counters summed over the nodes, plus the
    /// conflict-refresh accounting (matches the engines' convention).
    pub stats: CacheStats,
    /// Commitments replicated into the nodes' shard-ledger partitions.
    pub shard_commitments: usize,
    /// Worker-pool liveness pings observed by the nodes.
    pub worker_pings: u64,
    /// Virtual time at which the last plan arrived.
    pub finish_time_us: SimTime,
}

/// The master/router component.
pub struct Dispatcher {
    index: Rc<ShardedWorkerIndex>,
    policy: GrantPolicy,
    budget: f64,
    /// Region-node component ids, indexed by node number.
    nodes: Vec<ComponentId>,
    /// Worker-pool component ids (quiesced at finish).
    pools: Vec<ComponentId>,
    /// Pending batches (not yet started).
    queue: VecDeque<Vec<(usize, Task)>>,
    /// Batches the harness promised to submit; the run only ends after all
    /// of them were solved (late rounds must not be cut off).
    batches_expected: usize,
    batches_done: usize,
    /// The batch currently being solved.
    current: Option<Batch>,
    /// Node number per global task index (fixed at submit time).
    node_of_task: BTreeMap<usize, usize>,
    /// Committed occupancy across batches (the checkout snapshot source).
    mirror: WorkerLedger,
    report: DispatcherReport,
    plans_outstanding: usize,
    /// Shared slot the harness reads the report from after the run.
    outbox: Rc<RefCell<Option<DispatcherReport>>>,
    /// Shared trace/metrics session handed to every batch master (`None`
    /// when the harness did not request a trace).
    obs: Option<Rc<ObsSession>>,
}

impl Dispatcher {
    /// A dispatcher over the given nodes and pools, writing its final report
    /// into `outbox` when every node has returned its plans.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: Rc<ShardedWorkerIndex>,
        policy: GrantPolicy,
        budget: f64,
        nodes: Vec<ComponentId>,
        pools: Vec<ComponentId>,
        batches_expected: usize,
        outbox: Rc<RefCell<Option<DispatcherReport>>>,
        obs: Option<Rc<ObsSession>>,
    ) -> Self {
        Self {
            index,
            policy,
            budget,
            nodes,
            pools,
            queue: VecDeque::new(),
            batches_expected,
            batches_done: 0,
            current: None,
            node_of_task: BTreeMap::new(),
            mirror: WorkerLedger::new(),
            report: DispatcherReport::default(),
            plans_outstanding: 0,
            outbox,
            obs,
        }
    }

    /// The node number owning a task (its home shard, striped over nodes).
    fn node_of(&self, task: &Task) -> usize {
        self.index.spatial_shard_of(&task.location) % self.nodes.len()
    }

    /// Rewrites a batch-local command to global indices.
    fn globalize(&self, command: MasterCommand, global: &[usize]) -> MasterCommand {
        match command {
            MasterCommand::Compute {
                task,
                version,
                max_cost,
            } => MasterCommand::Compute {
                task: global[task],
                version,
                max_cost,
            },
            MasterCommand::Refresh {
                task,
                version,
                slot,
                occupied,
                max_cost,
            } => MasterCommand::Refresh {
                task: global[task],
                version,
                slot,
                occupied,
                max_cost,
            },
            MasterCommand::UndoRefresh { task, slot } => MasterCommand::UndoRefresh {
                task: global[task],
                slot,
            },
            MasterCommand::Execute { task, slot } => MasterCommand::Execute {
                task: global[task],
                slot,
            },
        }
    }

    /// Sends a batch of master commands to the owning nodes.
    fn dispatch(
        &self,
        commands: Vec<MasterCommand>,
        global: &[usize],
        ctx: &mut Context<'_, NetMessage>,
    ) {
        for command in commands {
            let cmd = self.globalize(command, global);
            let node = self.node_of_task[&cmd.task()];
            ctx.send(self.nodes[node], NetMessage::Command(cmd));
        }
    }

    /// Starts the next queued batch: checkout requests per node, then the
    /// master's initial compute commands.
    fn start_next_batch(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let Some(entries) = self.queue.pop_front() else {
            return;
        };
        // Committed-occupancy snapshot for the checkout reconciliation (the
        // ledger exposes per-slot sets; walk the slots the index covers).
        let snapshot: Vec<_> = (0..tcsc_index::SpatialQuery::num_slots(self.index.as_ref()))
            .filter_map(|slot| {
                let occupied = self.mirror.occupied_at(slot);
                (!occupied.is_empty()).then_some((slot, occupied))
            })
            .collect();

        let mut per_node: BTreeMap<usize, Vec<(usize, Task)>> = BTreeMap::new();
        let mut global = Vec::with_capacity(entries.len());
        for (global_idx, task) in entries {
            let node = self.node_of(&task);
            self.node_of_task.insert(global_idx, node);
            global.push(global_idx);
            per_node.entry(node).or_default().push((global_idx, task));
        }
        for (node, node_entries) in per_node {
            ctx.send(
                self.nodes[node],
                NetMessage::Checkout {
                    entries: node_entries,
                    occupied: snapshot.clone(),
                },
            );
        }

        let (master, initial) = TaskMaster::new(
            global.len(),
            self.budget,
            self.mirror.clone(),
            self.policy,
            true,
        );
        let master = master.with_recorder(self.obs.clone());
        self.dispatch(initial, &global, ctx);
        let local_of = global.iter().enumerate().map(|(l, &g)| (g, l)).collect();
        self.current = Some(Batch {
            master,
            global,
            local_of,
        });
    }

    /// Retires finished batches, starts queued ones, and ends the run when
    /// every promised batch has been solved.
    fn pump(&mut self, ctx: &mut Context<'_, NetMessage>) {
        loop {
            match self.current.take() {
                Some(batch) if batch.master.is_done() => {
                    self.finish_batch(batch);
                    self.batches_done += 1;
                }
                Some(batch) => {
                    self.current = Some(batch);
                    return;
                }
                None => {
                    if !self.queue.is_empty() {
                        self.start_next_batch(ctx);
                        continue;
                    }
                    if self.batches_done == self.batches_expected && self.plans_outstanding == 0 {
                        self.broadcast_finish(ctx);
                    }
                    return;
                }
            }
        }
    }

    /// Folds a finished batch's tables into the run report.
    fn finish_batch(&mut self, batch: Batch) {
        let global = batch.global;
        let (_, _, committed, conflicts, executions, rollbacks, supersedes) =
            batch.master.into_tables();
        self.report.conflicts += conflicts;
        self.report.executions += executions;
        self.report.rollbacks += rollbacks;
        self.report.supersedes += supersedes;
        self.report
            .committed
            .extend(committed.into_iter().map(|c| CommittedExecution {
                task: global[c.task],
                ..c
            }));
    }

    /// Ends the run: quiesce the pools and collect plans from every node.
    fn broadcast_finish(&mut self, ctx: &mut Context<'_, NetMessage>) {
        for &pool in &self.pools {
            ctx.send(pool, NetMessage::Quiesce);
        }
        for &node in &self.nodes {
            ctx.send(node, NetMessage::Finish);
        }
        self.plans_outstanding = self.nodes.len();
    }
}

impl Component<NetMessage> for Dispatcher {
    fn on_message(
        &mut self,
        _from: ComponentId,
        message: NetMessage,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        match message {
            NetMessage::SubmitBatch { entries } => {
                self.queue.push_back(entries);
                self.pump(ctx);
            }
            NetMessage::Event {
                event,
                worker_location,
            } => {
                let mut batch = self.current.take().expect("an event implies a live batch");
                // Translate the global task index back to the batch-local one.
                let localize = |global_idx: usize| {
                    *batch
                        .local_of
                        .get(&global_idx)
                        .expect("event for a task of the current batch")
                };
                let local_event = match event {
                    WorkerEvent::Heartbeat {
                        task,
                        version,
                        candidate,
                        planned_worker,
                    } => WorkerEvent::Heartbeat {
                        task: localize(task),
                        version,
                        candidate,
                        planned_worker,
                    },
                    WorkerEvent::Executed {
                        task,
                        slot,
                        worker,
                        cost,
                    } => {
                        // A committed execution: mirror the occupancy and
                        // replicate the claim to the worker's owning shard.
                        self.mirror.occupy(slot, worker);
                        let location =
                            worker_location.expect("executed events carry the worker location");
                        let shard = self.index.spatial_shard_of(&location);
                        let node = shard % self.nodes.len();
                        ctx.send(
                            self.nodes[node],
                            NetMessage::Claim {
                                shard,
                                slot,
                                worker,
                            },
                        );
                        WorkerEvent::Executed {
                            task: localize(task),
                            slot,
                            worker,
                            cost,
                        }
                    }
                };
                let commands = batch.master.handle(local_event);
                self.dispatch(commands, &batch.global, ctx);
                self.current = Some(batch);
                self.pump(ctx);
            }
            NetMessage::Plans {
                plans,
                stats,
                commitments,
                pings,
            } => {
                self.report.plans.extend(plans);
                self.report.stats.merge(&stats);
                self.report.shard_commitments += commitments;
                self.report.worker_pings += pings;
                self.plans_outstanding -= 1;
                if self.plans_outstanding == 0 {
                    // The engines charge one slot refresh per conflict; match
                    // their accounting so the stats are comparable.
                    self.report.stats.slot_computations += self.report.conflicts;
                    self.report.stats.slot_refreshes += self.report.conflicts;
                    self.report.stats.rebuild_slot_computations += self.report.conflicts;
                    self.report.plans.sort_by_key(|(g, _)| *g);
                    self.report.finish_time_us = ctx.now();
                    *self.outbox.borrow_mut() = Some(std::mem::take(&mut self.report));
                }
            }
            _ => unreachable!("unexpected message at the dispatcher"),
        }
    }
}
