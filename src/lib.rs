//! # tcsc — Time-Continuous Spatial Crowdsourcing
//!
//! Facade crate re-exporting the full public API of the TCSC reproduction:
//!
//! * [`core`] — data model (tasks, subtasks, workers, domains), cost model
//!   and the entropy-based quality metric with its reliability and
//!   spatiotemporal extensions;
//! * [`index`] — order-k 1-D Voronoi diagrams, the aggregated tree index with
//!   best-first pruned search, and the spatial worker grid — dense and
//!   sharded, both mutable in place ([`index::MutableSpatialIndex`]:
//!   tile-local insert / remove / move with per-tile version counters);
//! * [`assign`] — single-task (`Approx`, `Approx*`, `OPT`, `Rand`) and
//!   multi-task (MSQM, MMQM, `SApprox`) assignment, the group-level and
//!   task-level parallel frameworks, and the batched / streaming
//!   `AssignmentEngine` with its shared incremental candidate cache;
//! * [`workload`] — synthetic workload generators (task distributions,
//!   worker trajectories, POIs) and reproducible scenarios, including
//!   streaming task arrivals, their event-trace conversion, heavy-tailed
//!   service streams (bounded-Pareto inter-arrivals under a cyclic
//!   rush-hour phase schedule) and seeded worker-motion tapes
//!   (waypoint drift plus offline/online churn, interleavable with an
//!   arrival trace into one service event stream);
//! * [`sim`] — the deterministic discrete-event simulation of the
//!   distributed runtime: dispatcher / region-node components over a
//!   virtual network, driving the (barrier or optimistic non-blocking)
//!   task-parallel master;
//! * [`obs`] — zero-dependency tracing and metrics: the [`obs::Recorder`]
//!   trait every runtime is generic over (no-op by default), wall/virtual
//!   clocks, a counter/gauge/histogram registry with sliding-window SLOs
//!   (windowed p50/p99 over wall or virtual time), the span-tree profiler
//!   ([`obs::profile_spans`] → per-path self/total time, collapsed-stack
//!   export), chrome://tracing export (spans and counter tracks) and the
//!   stable logical-stream digest used as an equivalence lock.
//!
//! See the `examples/` directory for end-to-end usage and `DESIGN.md` /
//! `EXPERIMENTS.md` for the mapping to the paper.
//!
//! ```
//! use tcsc::prelude::*;
//!
//! // Generate a small reproducible scenario and assign its first task.
//! let scenario = ScenarioConfig::small().build();
//! let index = WorkerIndex::build(&scenario.workers, scenario.config.num_slots, &scenario.domain);
//! let task = scenario.first_task();
//! let candidates = SlotCandidates::compute(task, &index, &EuclideanCost::default());
//! let outcome = approx_star(task, &candidates, &SingleTaskConfig::new(20.0));
//! assert!(outcome.plan.total_cost() <= 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tcsc_assign as assign;
pub use tcsc_core as core;
pub use tcsc_index as index;
pub use tcsc_obs as obs;
pub use tcsc_sim as sim;
pub use tcsc_workload as workload;

pub mod solver;

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::solver::{Runtime, SolveObjective, SolverBuilder};
    pub use tcsc_assign::{
        approx, approx_star, independence_graph, min_budget_for_quality, optimal,
        random_assignment, random_summary, AssignmentEngine, CacheStats, CandidateCache,
        ChurnCounters, ConcurrentAssignmentEngine, ConflictAccounting, DisjointDrainReport,
        MultiTaskConfig, Objective, RefreshStrategy, ShardedLedger, SingleTaskConfig,
        SlotCandidates, SpatioTemporalObjective, WorkerLedger,
    };
    #[allow(deprecated)]
    pub use tcsc_assign::{
        mmqm, msqm_group_parallel, msqm_group_parallel_cached, msqm_serial, msqm_task_parallel,
        msqm_task_parallel_optimistic, sapprox,
    };
    pub use tcsc_core::{
        AssignmentPlan, Budget, CostModel, Domain, EuclideanCost, InterpolationWeights, Location,
        MultiAssignment, QualityEvaluator, QualityParams, SpatioTemporalEvaluator, Task, TaskId,
        Worker, WorkerId, WorkerPool, WorkerSlot,
    };
    pub use tcsc_index::{
        IndexMutation, MutableSpatialIndex, OrderKVoronoi, ShardGridConfig, ShardedWorkerIndex,
        SpatialQuery, VTree, VTreeConfig, WorkerIndex, WorkerProfile,
    };
    pub use tcsc_obs::{
        obs_digest, profile_spans, replay_digest, Gauge, Histogram, MetricsRegistry, NoopRecorder,
        ObsReport, ObsSession, PathStat, Recorder, SlidingWindow, SpanProfile, Stopwatch,
    };
    pub use tcsc_sim::{
        plan_hash, run_cluster, LatencyModel, SimBatch, SimClusterConfig, SimOutcome,
    };
    pub use tcsc_workload::{
        interleave, ArrivalPhase, ArrivalSampler, ArrivalTrace, BoundedPareto, HeavyTailedArrivals,
        MotionEvent, MotionTape, PhaseSchedule, PoiConfig, PoiDataset, Scenario, ScenarioConfig,
        ServiceEvent, SpatialDistribution, StreamingConfig, StreamingScenario, TaskPlacement,
        TrajectoryConfig, WorkerChurnConfig, WorkerMotion,
    };
}
