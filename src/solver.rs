//! The unified [`SolverBuilder`] facade over the multi-task solver zoo.
//!
//! The repository grew one free function per (runtime × objective × policy)
//! point — `msqm_serial`, `mmqm`, `sapprox`, `msqm_task_parallel`,
//! `msqm_task_parallel_optimistic`, `msqm_group_parallel_cached`, plus the
//! engine constructors.  The builder collapses that zoo into one declarative
//! configuration surface:
//!
//! ```
//! use tcsc::solver::{Runtime, SolveObjective, SolverBuilder};
//! use tcsc::prelude::*;
//!
//! let scenario = ScenarioConfig::small().build();
//! let outcome = SolverBuilder::new(30.0)
//!     .with_runtime(Runtime::Concurrent)
//!     .with_grid(ShardGridConfig::new(2, 2))
//!     .with_threads(4)
//!     .solve(
//!         &scenario.tasks,
//!         &scenario.workers,
//!         scenario.config.num_slots,
//!         &scenario.domain,
//!         &EuclideanCost::default(),
//!     );
//! assert!(outcome.assignment.total_cost() <= 30.0 + 1e-6);
//! ```
//!
//! Every runtime commits through the same greedy core, so for a fixed
//! configuration the builder is **bit-identical** to the legacy free
//! function it replaces (locked by `tests/builder_equivalence.rs`); the
//! legacy functions remain available as `#[deprecated]` wrappers.

use std::rc::Rc;

use tcsc_assign::{
    AssignmentEngine, ConcurrentAssignmentEngine, ConflictAccounting, GrantPolicy, MultiOutcome,
    MultiTaskConfig, Objective, RefreshStrategy, SpatioTemporalObjective,
};
use tcsc_core::{CostModel, Domain, InterpolationWeights, Task, WorkerPool};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, WorkerIndex};
use tcsc_sim::{run_cluster, LatencyModel, SimBatch, SimClusterConfig};

/// Which execution substrate runs the greedy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Runtime {
    /// The single-threaded [`AssignmentEngine`] (the `msqm_serial` / `mmqm` /
    /// `sapprox` substrate).
    #[default]
    Serial,
    /// The sharded [`ConcurrentAssignmentEngine`]: region-parallel checkout
    /// and candidate waves, serial deterministic commit loop (and, under
    /// [`ConflictAccounting::V2`] drains, disjoint-region commit overlap).
    Concurrent,
    /// The task-level parallel master/owner framework
    /// (`msqm_task_parallel{,_optimistic}`; the grant policy picks the
    /// barrier or optimistic master).  MSQM only, V1 accounting only.
    TaskParallel,
    /// The group-level parallel framework over the conflict-independence
    /// graph (`msqm_group_parallel{,_cached}`).  MSQM only.
    GroupParallel,
    /// The deterministic discrete-event cluster simulation (`run_cluster`).
    /// MSQM only, V1 accounting only.
    Sim,
}

/// Which quality objective the greedy maximises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveObjective {
    /// Maximise the summation quality `q_sum` (MSQM, Problem 2).
    SumQuality,
    /// Maximise the minimum task quality `q_min` (MMQM, Problem 3).
    MinQuality,
    /// Maximise a spatiotemporally interpolated objective (`SApprox`,
    /// Appendix C) under the given interpolation weights.
    SpatioTemporal {
        /// The temporal/spatial interpolation weights.
        weights: InterpolationWeights,
        /// The aggregate (sum or min) the interpolated metric feeds.
        objective: SpatioTemporalObjective,
    },
}

/// Declarative configuration of one multi-task solve: runtime, objective,
/// assignment parameters, parallelism and shard layout.  See the
/// [module docs](self) for the zoo it replaces.
#[derive(Debug, Clone)]
pub struct SolverBuilder {
    config: MultiTaskConfig,
    runtime: Runtime,
    objective: SolveObjective,
    threads: usize,
    grid: ShardGridConfig,
    policy: GrantPolicy,
    use_priorities: bool,
    group_cache: bool,
    sim_nodes: usize,
    sim_latency: LatencyModel,
    sim_seed: u64,
}

impl SolverBuilder {
    /// A serial MSQM solve under `budget`, with defaults everywhere else
    /// (V1 accounting, full refresh, one thread, a 1×1 shard grid, the
    /// barrier grant policy).
    pub fn new(budget: f64) -> Self {
        Self {
            config: MultiTaskConfig::new(budget),
            runtime: Runtime::Serial,
            objective: SolveObjective::SumQuality,
            threads: 1,
            grid: ShardGridConfig::new(1, 1),
            policy: GrantPolicy::Barrier,
            use_priorities: true,
            group_cache: false,
            sim_nodes: 2,
            sim_latency: LatencyModel::Zero,
            sim_seed: 42,
        }
    }

    /// Replaces the full assignment configuration (budget, `k`, `ts`,
    /// V-tree, refresh strategy, conflict accounting).
    pub fn with_config(mut self, config: MultiTaskConfig) -> Self {
        self.config = config;
        self
    }

    /// The current assignment configuration.
    pub fn config(&self) -> &MultiTaskConfig {
        &self.config
    }

    /// Selects the execution substrate.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Selects the objective.
    pub fn with_objective(mut self, objective: SolveObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Selects the conflict-accounting contract (V1 eager, V2 CELF lazy).
    pub fn with_accounting(mut self, accounting: ConflictAccounting) -> Self {
        self.config = self.config.with_accounting(accounting);
        self
    }

    /// Selects the candidate refresh strategy.
    pub fn with_refresh(mut self, refresh: RefreshStrategy) -> Self {
        self.config = self.config.with_refresh(refresh);
        self
    }

    /// Degree of parallelism of the parallel runtimes (ignored by
    /// [`Runtime::Serial`]; never changes any outcome).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shard grid of [`Runtime::Concurrent`] and [`Runtime::Sim`].
    pub fn with_grid(mut self, grid: ShardGridConfig) -> Self {
        self.grid = grid;
        self
    }

    /// Grant policy of [`Runtime::TaskParallel`] and [`Runtime::Sim`]
    /// (barrier = deterministic full barrier, optimistic = non-blocking with
    /// rollback).
    pub fn with_policy(mut self, policy: GrantPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Whether the task-parallel master uses the priority queue of pending
    /// heartbeats (the paper's configuration) or plain FIFO arbitration.
    pub fn with_priorities(mut self, use_priorities: bool) -> Self {
        self.use_priorities = use_priorities;
        self
    }

    /// Whether [`Runtime::GroupParallel`] shares the candidate cache across
    /// groups (`msqm_group_parallel_cached`) or rebuilds per group.
    pub fn with_group_cache(mut self, cached: bool) -> Self {
        self.group_cache = cached;
        self
    }

    /// Number of simulated region nodes of [`Runtime::Sim`].
    pub fn with_sim_nodes(mut self, nodes: usize) -> Self {
        self.sim_nodes = nodes.max(1);
        self
    }

    /// Network latency model of [`Runtime::Sim`].
    pub fn with_sim_latency(mut self, latency: LatencyModel) -> Self {
        self.sim_latency = latency;
        self
    }

    /// Latency-draw seed of [`Runtime::Sim`].
    pub fn with_sim_seed(mut self, seed: u64) -> Self {
        self.sim_seed = seed;
        self
    }

    /// Runs the configured solve over one task batch.
    ///
    /// The worker index (dense or sharded, depending on the runtime) is
    /// built internally from the pool.  Panics with a descriptive message on
    /// unsupported combinations: a non-MSQM objective on a parallel
    /// framework that only implements MSQM, or
    /// [`ConflictAccounting::V2`] on the runtimes that replay the V1
    /// eager-refresh protocol ([`Runtime::TaskParallel`], [`Runtime::Sim`]).
    pub fn solve<C: CostModel + Sync + Clone + 'static>(
        &self,
        tasks: &[Task],
        workers: &WorkerPool,
        num_slots: usize,
        domain: &Domain,
        cost_model: &C,
    ) -> MultiOutcome {
        match self.runtime {
            Runtime::Serial | Runtime::TaskParallel | Runtime::GroupParallel => {
                let index = WorkerIndex::build(workers, num_slots, domain);
                self.solve_indexed(tasks, &index, domain, cost_model)
            }
            Runtime::Concurrent => {
                let objective = match self.objective {
                    SolveObjective::SumQuality => Objective::SumQuality,
                    SolveObjective::MinQuality => Objective::MinQuality,
                    SolveObjective::SpatioTemporal { .. } => panic!(
                        "Runtime::Concurrent does not implement the spatiotemporal \
                         objective; use Runtime::Serial"
                    ),
                };
                let sharded = ShardedWorkerIndex::build(workers, num_slots, domain, self.grid);
                let mut engine =
                    ConcurrentAssignmentEngine::new(sharded, cost_model, self.config, self.threads);
                engine.assign_batch_parallel(tasks, objective)
            }
            Runtime::Sim => {
                self.require_msqm("Runtime::Sim");
                let mut config =
                    SimClusterConfig::new(self.sim_nodes, 1, self.config.budget, self.sim_latency)
                        .with_policy(self.policy)
                        .with_seed(self.sim_seed);
                config.grid = self.grid;
                config.assignment = self.config;
                let sim = run_cluster(
                    workers,
                    num_slots,
                    domain,
                    vec![SimBatch::immediate(tasks.to_vec())],
                    Rc::new(cost_model.clone()),
                    &config,
                );
                MultiOutcome {
                    assignment: sim.assignment,
                    conflicts: sim.conflicts,
                    executions: sim.executions,
                    stats: sim.stats,
                }
            }
        }
    }

    /// Runs the configured solve over a caller-built dense index (the
    /// timing-sensitive entry point: the index build stays outside the
    /// measured region).  Only the dense-index runtimes are supported;
    /// [`Runtime::Concurrent`] and [`Runtime::Sim`] build their own sharded
    /// state from the pool and must go through [`SolverBuilder::solve`].
    pub fn solve_indexed<C: CostModel + Sync>(
        &self,
        tasks: &[Task],
        index: &WorkerIndex,
        domain: &Domain,
        cost_model: &C,
    ) -> MultiOutcome {
        match self.runtime {
            Runtime::Serial => {
                let mut engine = AssignmentEngine::borrowed(index, cost_model, self.config);
                match self.objective {
                    SolveObjective::SumQuality => engine.assign_batch(tasks, Objective::SumQuality),
                    SolveObjective::MinQuality => engine.assign_batch(tasks, Objective::MinQuality),
                    SolveObjective::SpatioTemporal { weights, objective } => {
                        engine.assign_spatiotemporal(tasks, domain, weights, objective)
                    }
                }
            }
            Runtime::TaskParallel => {
                self.require_msqm("Runtime::TaskParallel");
                #[allow(deprecated)]
                let result = match self.policy {
                    GrantPolicy::Barrier => tcsc_assign::msqm_task_parallel(
                        tasks,
                        index,
                        cost_model,
                        &self.config,
                        self.threads,
                        self.use_priorities,
                    ),
                    GrantPolicy::Optimistic => tcsc_assign::msqm_task_parallel_optimistic(
                        tasks,
                        index,
                        cost_model,
                        &self.config,
                        self.threads,
                        self.use_priorities,
                    ),
                };
                result.outcome
            }
            Runtime::GroupParallel => {
                self.require_msqm("Runtime::GroupParallel");
                #[allow(deprecated)]
                let result = if self.group_cache {
                    let mut cache = tcsc_assign::CandidateCache::new();
                    tcsc_assign::msqm_group_parallel_cached(
                        tasks,
                        index,
                        cost_model,
                        &self.config,
                        self.threads,
                        &mut cache,
                    )
                } else {
                    tcsc_assign::msqm_group_parallel(
                        tasks,
                        index,
                        cost_model,
                        &self.config,
                        self.threads,
                    )
                };
                result.outcome
            }
            Runtime::Concurrent | Runtime::Sim => panic!(
                "{:?} builds its own sharded state from the worker pool; \
                 use SolverBuilder::solve",
                self.runtime
            ),
        }
    }

    fn require_msqm(&self, runtime: &str) {
        assert!(
            matches!(self.objective, SolveObjective::SumQuality),
            "{runtime} only implements the MSQM (SumQuality) objective; \
             use Runtime::Serial or Runtime::Concurrent for {:?}",
            self.objective,
        );
    }
}
