//! Quickstart: assign a single time-continuous task under a budget.
//!
//! Run with `cargo run --example quickstart`.

use tcsc::prelude::*;

fn main() {
    // 1. A water-quality sensing task at a fixed location, observed over 48
    //    hourly time slots.
    let task = Task::new(TaskId(0), Location::new(40.0, 60.0), 48);

    // 2. A small pool of registered workers with availability windows.  In a
    //    real deployment these come from worker registrations; here we use
    //    the synthetic trajectory generator.
    let scenario = ScenarioConfig::small()
        .with_num_slots(48)
        .with_num_workers(300)
        .with_seed(7)
        .build();
    let workers = scenario.workers;
    let domain = scenario.domain;

    // 3. Build the per-slot worker index and the candidate assignments
    //    (nearest available worker per slot).
    let index = WorkerIndex::build(&workers, 48, &domain);
    let candidates = SlotCandidates::compute(&task, &index, &EuclideanCost::default());
    println!(
        "{} of {} slots have an available worker",
        candidates.available(),
        task.num_slots
    );

    // 4. Run the quality-aware greedy assignment (Approx*, Algorithm 1 with
    //    the aggregated Voronoi-tree index) under a budget.
    let budget = 30.0;
    let outcome = approx_star(&task, &candidates, &SingleTaskConfig::new(budget));

    println!("budget            : {budget}");
    println!("executed subtasks : {}", outcome.plan.executed_count());
    println!("total cost        : {:.2}", outcome.plan.total_cost());
    println!(
        "task quality      : {:.3} (max possible {:.3})",
        outcome.plan.quality,
        (task.num_slots as f64).log2()
    );
    println!(
        "pruning ratio     : {:.1}%",
        outcome.search_stats.pruning_ratio() * 100.0
    );

    // 5. Compare against the unindexed greedy and the randomized baseline.
    let plain = approx(&task, &candidates, &SingleTaskConfig::new(budget));
    let mut rng = rand::thread_rng();
    let rand = random_summary(
        &mut rng,
        &task,
        &candidates,
        &SingleTaskConfig::new(budget),
        10,
    );
    println!("Approx quality    : {:.3}", plain.plan.quality);
    println!(
        "Rand quality      : min {:.3} / avg {:.3} / max {:.3}",
        rand.min, rand.avg, rand.max
    );
}
