//! Traffic surveillance with spatiotemporal interpolation (the STCC extension
//! of the paper's appendix): several road segments are monitored
//! simultaneously, and an unobserved segment-hour can be inferred both from
//! other hours of the same segment (temporal) and from nearby segments
//! observed during the same hour (spatial).
//!
//! Run with `cargo run --example traffic_surveillance`.

use tcsc::prelude::*;

fn main() {
    let num_slots = 36; // three days of 2-hour slots

    // Road segments across a city grid.
    let tasks: Vec<Task> = (0..8)
        .map(|i| {
            let x = 15.0 + 10.0 * (i % 4) as f64;
            let y = 30.0 + 25.0 * (i / 4) as f64;
            Task::new(TaskId(i as u32), Location::new(x, y), num_slots)
        })
        .collect();

    let scenario = ScenarioConfig::small()
        .with_num_slots(num_slots)
        .with_num_workers(600)
        .with_seed(99)
        .build();
    let index = WorkerIndex::build(&scenario.workers, num_slots, &scenario.domain);
    let cost_model = EuclideanCost::default();
    let budget = 150.0;
    let config = MultiTaskConfig::new(budget);

    // Temporal-only interpolation (the base TCSC metric) ...
    let temporal = SolverBuilder::new(budget)
        .with_config(config)
        .with_objective(SolveObjective::SpatioTemporal {
            weights: InterpolationWeights::temporal_only(),
            objective: SpatioTemporalObjective::Sum,
        })
        .solve_indexed(&tasks, &index, &scenario.domain, &cost_model);
    // ... versus the weighted spatiotemporal metric (w_t = 0.7, w_s = 0.3).
    let spatiotemporal = SolverBuilder::new(budget)
        .with_config(config)
        .with_objective(SolveObjective::SpatioTemporal {
            weights: InterpolationWeights::paper_default(),
            objective: SpatioTemporalObjective::Sum,
        })
        .solve_indexed(&tasks, &index, &scenario.domain, &cost_model);

    println!("road segments        : {}", tasks.len());
    println!("budget               : {budget}");
    println!();
    println!(
        "Approx  (temporal)   : sum quality {:.3}, {} probes, {} conflicts",
        temporal.sum_quality(),
        temporal.executions,
        temporal.conflicts
    );
    println!(
        "SApprox (spatiotemp.): sum quality {:.3}, {} probes, {} conflicts",
        spatiotemporal.sum_quality(),
        spatiotemporal.executions,
        spatiotemporal.conflicts
    );
    println!();

    // Sweep the temporal weight, as in Fig. 11(c).
    println!("{:<8} {:>12}", "w_t", "sum quality");
    for wt in [0.0, 0.25, 0.5, 0.7, 0.9, 1.0] {
        let outcome = SolverBuilder::new(budget)
            .with_config(config)
            .with_objective(SolveObjective::SpatioTemporal {
                weights: InterpolationWeights::from_temporal_ratio(wt),
                objective: SpatioTemporalObjective::Sum,
            })
            .solve_indexed(&tasks, &index, &scenario.domain, &cost_model);
        println!("{wt:<8.2} {:>12.3}", outcome.sum_quality());
    }
}
