//! Long-term water-quality monitoring (the paper's motivating example,
//! Fig. 1): a crowdsourcer wants microbial content measured at several river
//! sites for a week, but the budget only covers a fraction of the
//! site-hours.  The example shows how the entropy quality metric trades
//! executed probes against interpolation error, and how worker reliability
//! is taken into account.
//!
//! Run with `cargo run --example water_quality_monitoring`.

use tcsc::prelude::*;

fn main() {
    // A week of 2-hour slots.
    let num_slots = 84;
    // Five monitoring sites along a river (clustered locations).
    let sites = [
        Location::new(20.0, 15.0),
        Location::new(32.0, 28.0),
        Location::new(45.0, 42.0),
        Location::new(58.0, 55.0),
        Location::new(70.0, 69.0),
    ];
    let tasks: Vec<Task> = sites
        .iter()
        .enumerate()
        .map(|(i, &loc)| Task::new(TaskId(i as u32), loc, num_slots))
        .collect();

    // Citizen-science volunteers with limited availability and imperfect
    // reliability (sensor handling errors, etc.).
    let trajectories = TrajectoryConfig::paper_default(num_slots).with_reliability(0.6, 1.0);
    let scenario = ScenarioConfig::small()
        .with_num_slots(num_slots)
        .with_num_workers(800)
        .with_seed(13)
        .build();
    let mut rng = rand::rngs::StdRng::from_seed_u64(13);
    let workers = tcsc_workload::generate_workers(&mut rng, 800, &scenario.domain, &trajectories);
    let index = WorkerIndex::build(&workers, num_slots, &scenario.domain);
    let cost_model = EuclideanCost::default();

    // Multi-task assignment: maximise the *minimum* site quality so no site
    // is left unmonitored (MMQM), with worker reliability weighting.
    let budget = 120.0;
    let config = MultiTaskConfig::new(budget).with_reliability();
    let outcome = SolverBuilder::new(budget)
        .with_config(config)
        .with_objective(SolveObjective::MinQuality)
        .solve_indexed(&tasks, &index, &scenario.domain, &cost_model);

    println!("budget shared by {} sites : {budget}", tasks.len());
    println!("worker conflicts          : {}", outcome.conflicts);
    println!("total executed probes     : {}", outcome.executions);
    println!();
    println!(
        "{:<8} {:>10} {:>10} {:>12}",
        "site", "probes", "cost", "quality"
    );
    for plan in &outcome.assignment.plans {
        println!(
            "{:<8} {:>10} {:>10.2} {:>12.3}",
            format!("site-{}", plan.task.0),
            plan.executed_count(),
            plan.total_cost(),
            plan.quality
        );
    }
    println!();
    println!("minimum site quality      : {:.3}", outcome.min_quality());
    println!("summed quality            : {:.3}", outcome.sum_quality());

    // For comparison: the sum-oriented objective concentrates probes on cheap
    // sites and can starve the weakest one.
    let sum_outcome = SolverBuilder::new(budget)
        .with_config(config)
        .solve_indexed(&tasks, &index, &scenario.domain, &cost_model);
    println!(
        "MSQM (sum-oriented)       : min {:.3}, sum {:.3}",
        sum_outcome.min_quality(),
        sum_outcome.sum_quality()
    );
}

/// Small helper extending `StdRng` with a seeded constructor without pulling
/// the `SeedableRng` trait into the example's namespace.
trait SeedExt {
    fn from_seed_u64(seed: u64) -> rand::rngs::StdRng;
}

impl SeedExt for rand::rngs::StdRng {
    fn from_seed_u64(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
