//! A TCSC platform serving many tasks at once: demonstrates the multi-task
//! pipeline end to end — workload generation, conflict analysis, and the
//! serial / group-level / task-level assignment frameworks (Section IV of
//! the paper).
//!
//! Run with `cargo run --example crowdsourcing_platform`.

use std::time::Instant;

use tcsc::prelude::*;

fn main() {
    // A batch of environmental-sensing tasks submitted to the platform.
    let config = ScenarioConfig::small()
        .with_num_tasks(12)
        .with_num_slots(60)
        .with_num_workers(1200)
        .with_placement(TaskPlacement::Synthetic(SpatialDistribution::Gaussian))
        .with_seed(2026);
    let scenario = config.build();
    let index = WorkerIndex::build(&scenario.workers, 60, &scenario.domain);
    let cost_model = EuclideanCost::default();

    // Inspect the conflict structure first: which tasks compete for workers?
    let graph = independence_graph(&scenario.tasks, &index, 6);
    println!(
        "independence graph   : {} tasks, {} conflict edges, {} groups (largest {})",
        graph.num_tasks,
        graph.conflict_count(),
        graph.groups.len(),
        graph.largest_group()
    );

    let budget = 250.0;
    let multi = MultiTaskConfig::new(budget);

    // Serial reference.
    let start = Instant::now();
    let serial = msqm_serial(&scenario.tasks, &index, &cost_model, &multi);
    let serial_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Group-level parallelization.
    let start = Instant::now();
    let grouped = msqm_group_parallel(&scenario.tasks, &index, &cost_model, &multi, 4);
    let grouped_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Task-level parallelization (deterministic: same plan as the serial run).
    let start = Instant::now();
    let task_level = msqm_task_parallel(&scenario.tasks, &index, &cost_model, &multi, 4, true);
    let task_ms = start.elapsed().as_secs_f64() * 1000.0;

    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "framework", "sum quality", "min quality", "conflicts", "ms"
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>12} {:>10.1}",
        "serial (no parallel)",
        serial.sum_quality(),
        serial.min_quality(),
        serial.conflicts,
        serial_ms
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>12} {:>10.1}",
        "group-level",
        grouped.outcome.sum_quality(),
        grouped.outcome.min_quality(),
        grouped.outcome.conflicts,
        grouped_ms
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>12} {:>10.1}",
        "task-level",
        task_level.outcome.sum_quality(),
        task_level.outcome.min_quality(),
        task_level.outcome.conflicts,
        task_ms
    );

    println!();
    println!(
        "task-level framework recorded {} conflict-table entries and {} log entries",
        task_level.conflict_table.len(),
        task_level.log.len()
    );
    assert!(
        (task_level.outcome.sum_quality() - serial.sum_quality()).abs() < 1e-9,
        "the task-level framework is deterministic and matches the serial plan"
    );
}
