//! A TCSC platform serving many tasks at once: demonstrates the multi-task
//! pipeline end to end — workload generation, conflict analysis, and the
//! serial / group-level / task-level assignment frameworks (Section IV of
//! the paper).
//!
//! Run with `cargo run --example crowdsourcing_platform`.

use tcsc::prelude::*;

fn main() {
    // A batch of environmental-sensing tasks submitted to the platform.
    let config = ScenarioConfig::small()
        .with_num_tasks(12)
        .with_num_slots(60)
        .with_num_workers(1200)
        .with_placement(TaskPlacement::Synthetic(SpatialDistribution::Gaussian))
        .with_seed(2026);
    let scenario = config.build();
    let index = WorkerIndex::build(&scenario.workers, 60, &scenario.domain);
    let cost_model = EuclideanCost::default();

    // Inspect the conflict structure first: which tasks compete for workers?
    let graph = independence_graph(&scenario.tasks, &index, 6);
    println!(
        "independence graph   : {} tasks, {} conflict edges, {} groups (largest {})",
        graph.num_tasks,
        graph.conflict_count(),
        graph.groups.len(),
        graph.largest_group()
    );

    let budget = 250.0;
    let multi = MultiTaskConfig::new(budget);

    // Serial reference.
    let sw = Stopwatch::start();
    let serial = SolverBuilder::new(budget).with_config(multi).solve_indexed(
        &scenario.tasks,
        &index,
        &scenario.domain,
        &cost_model,
    );
    let serial_ms = sw.elapsed_ms();

    // Group-level parallelization.
    let sw = Stopwatch::start();
    let grouped = SolverBuilder::new(budget)
        .with_config(multi)
        .with_runtime(Runtime::GroupParallel)
        .with_threads(4)
        .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost_model);
    let grouped_ms = sw.elapsed_ms();

    // Task-level parallelization (deterministic: same plan as the serial run).
    let sw = Stopwatch::start();
    let task_level = SolverBuilder::new(budget)
        .with_config(multi)
        .with_runtime(Runtime::TaskParallel)
        .with_threads(4)
        .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost_model);
    let task_ms = sw.elapsed_ms();

    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "framework", "sum quality", "min quality", "conflicts", "ms"
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>12} {:>10.1}",
        "serial (no parallel)",
        serial.sum_quality(),
        serial.min_quality(),
        serial.conflicts,
        serial_ms
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>12} {:>10.1}",
        "group-level",
        grouped.sum_quality(),
        grouped.min_quality(),
        grouped.conflicts,
        grouped_ms
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>12} {:>10.1}",
        "task-level",
        task_level.sum_quality(),
        task_level.min_quality(),
        task_level.conflicts,
        task_ms
    );

    println!();
    assert!(
        (task_level.sum_quality() - serial.sum_quality()).abs() < 1e-9,
        "the task-level framework is deterministic and matches the serial plan"
    );
}
