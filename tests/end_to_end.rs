//! Cross-crate integration tests: workload generation → indexing →
//! assignment → quality accounting, exercised through the public facade.

use tcsc::prelude::*;

fn build_world(
    seed: u64,
    num_tasks: usize,
    num_slots: usize,
    num_workers: usize,
) -> (Scenario, WorkerIndex) {
    let scenario = ScenarioConfig::small()
        .with_num_tasks(num_tasks)
        .with_num_slots(num_slots)
        .with_num_workers(num_workers)
        .with_seed(seed)
        .build();
    let index = WorkerIndex::build(&scenario.workers, num_slots, &scenario.domain);
    (scenario, index)
}

#[test]
fn single_task_pipeline_produces_consistent_plans() {
    let (scenario, index) = build_world(1, 1, 80, 800);
    let task = scenario.first_task();
    let candidates = SlotCandidates::compute(task, &index, &EuclideanCost::default());
    let cfg = SingleTaskConfig::new(25.0);

    let plain = approx(task, &candidates, &cfg);
    let indexed = approx_star(task, &candidates, &cfg);

    // Both algorithms follow the same greedy rule, so the plans must achieve
    // the same quality and respect the budget.
    assert!((plain.plan.quality - indexed.plan.quality).abs() < 1e-6);
    assert!(plain.plan.total_cost() <= 25.0 + 1e-9);
    assert!(indexed.plan.total_cost() <= 25.0 + 1e-9);

    // Recomputing the quality from the executed slots must reproduce the
    // reported quality exactly (single source of truth for the metric).
    let mut evaluator = QualityEvaluator::with_slots(task.num_slots, 3);
    for exec in &indexed.plan.executions {
        evaluator.execute(exec.slot);
    }
    assert!((evaluator.quality() - indexed.plan.quality).abs() < 1e-9);
}

#[test]
fn quality_improves_with_budget_across_the_whole_pipeline() {
    let (scenario, index) = build_world(2, 1, 60, 600);
    let task = scenario.first_task();
    let candidates = SlotCandidates::compute(task, &index, &EuclideanCost::default());
    let mut last = -1.0;
    for budget in [5.0, 15.0, 30.0, 60.0] {
        let outcome = approx_star(task, &candidates, &SingleTaskConfig::new(budget));
        assert!(outcome.plan.quality >= last - 1e-9);
        last = outcome.plan.quality;
    }
}

#[test]
fn greedy_dominates_random_baseline_end_to_end() {
    let (scenario, index) = build_world(3, 1, 60, 600);
    let task = scenario.first_task();
    let candidates = SlotCandidates::compute(task, &index, &EuclideanCost::default());
    let cfg = SingleTaskConfig::new(15.0);
    let greedy = approx_star(task, &candidates, &cfg);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let rand = random_summary(&mut rng, task, &candidates, &cfg, 10);
    assert!(greedy.plan.quality + 1e-9 >= rand.avg);
}

#[test]
fn multi_task_frameworks_agree_and_respect_constraints() {
    let (scenario, index) = build_world(4, 8, 40, 500);
    let cost_model = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(80.0);

    let serial = SolverBuilder::new(80.0).with_config(cfg).solve_indexed(
        &scenario.tasks,
        &index,
        &scenario.domain,
        &cost_model,
    );
    let task_level = SolverBuilder::new(80.0)
        .with_config(cfg)
        .with_runtime(Runtime::TaskParallel)
        .with_threads(3)
        .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost_model);
    let grouped = SolverBuilder::new(80.0)
        .with_config(cfg)
        .with_runtime(Runtime::GroupParallel)
        .with_threads(3)
        .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost_model);

    // Determinism of the task-level framework.
    assert!((serial.sum_quality() - task_level.sum_quality()).abs() < 1e-9);
    assert_eq!(serial.executions, task_level.executions);

    // Budgets are respected everywhere.
    assert!(serial.assignment.total_cost() <= 80.0 + 1e-6);
    assert!(task_level.assignment.total_cost() <= 80.0 + 1e-6);
    assert!(grouped.assignment.total_cost() <= 80.0 + 1e-6);

    // No worker is double-booked in the serial / task-level plans.
    for outcome in [&serial, &task_level] {
        let mut seen = std::collections::HashSet::new();
        for plan in &outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(seen.insert((exec.slot, exec.worker)));
            }
        }
    }
}

#[test]
fn mmqm_lifts_the_weakest_task() {
    let (scenario, index) = build_world(5, 6, 40, 500);
    let cost_model = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(60.0);
    let min_focused = SolverBuilder::new(60.0)
        .with_config(cfg)
        .with_objective(SolveObjective::MinQuality)
        .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost_model);
    let sum_focused = SolverBuilder::new(60.0).with_config(cfg).solve_indexed(
        &scenario.tasks,
        &index,
        &scenario.domain,
        &cost_model,
    );
    assert!(min_focused.min_quality() + 1e-9 >= sum_focused.min_quality());
}

#[test]
fn spatiotemporal_extension_runs_through_the_facade() {
    let (scenario, index) = build_world(6, 5, 30, 400);
    let cost_model = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(50.0);
    let outcome = SolverBuilder::new(50.0)
        .with_config(cfg)
        .with_objective(SolveObjective::SpatioTemporal {
            weights: InterpolationWeights::paper_default(),
            objective: SpatioTemporalObjective::Sum,
        })
        .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost_model);
    assert!(outcome.assignment.total_cost() <= 50.0 + 1e-6);
    assert!(outcome.sum_quality() > 0.0);
}

#[test]
fn dual_search_is_consistent_with_the_primal_solver() {
    let (scenario, index) = build_world(7, 1, 40, 400);
    let task = scenario.first_task();
    let candidates = SlotCandidates::compute(task, &index, &EuclideanCost::default());
    let target = 2.0;
    let dual = min_budget_for_quality(task, &candidates, &SingleTaskConfig::new(0.0), target, 0.1);
    if let Some(budget) = dual.budget {
        let check = approx_star(task, &candidates, &SingleTaskConfig::new(budget));
        assert!(check.plan.quality + 1e-6 >= target);
    }
}

#[test]
fn voronoi_diagram_is_consistent_with_the_quality_evaluator() {
    let mut evaluator = QualityEvaluator::with_slots(100, 3);
    for slot in [4, 17, 40, 41, 77, 90] {
        evaluator.execute(slot);
    }
    let diagram = OrderKVoronoi::build(&evaluator);
    // Every unexecuted slot's k-NN set from the diagram matches the
    // evaluator's interpolation neighbours.
    for slot in 0..100 {
        if evaluator.is_executed(slot) {
            continue;
        }
        let mut from_eval: Vec<usize> = evaluator.knn(slot).iter().filter_map(|n| n.slot).collect();
        from_eval.sort_unstable();
        assert_eq!(
            diagram.knn_of(slot).unwrap(),
            from_eval.as_slice(),
            "slot {slot}"
        );
    }
}
