//! Builder/legacy equivalence: [`SolverBuilder`] is a *facade*, not a fork —
//! for every runtime it must reproduce the outcome of the deprecated free
//! function it replaces **bit-for-bit** (plans, conflicts, executions, cache
//! counters) on the seeded scenario presets.  These suites are the migration
//! contract: as long as they pass, swapping a legacy call for the builder is
//! a pure refactor.
// The whole point of this file is to call the deprecated wrappers next to
// the builder, so the lint is off for the file.
#![allow(deprecated)]

use tcsc::prelude::*;
use tcsc_assign::CandidateCache;

/// The scenario presets every equivalence assertion sweeps.
fn presets() -> Vec<(&'static str, ScenarioConfig)> {
    vec![
        (
            "small-uniform",
            ScenarioConfig::small()
                .with_num_tasks(8)
                .with_num_slots(40)
                .with_num_workers(500)
                .with_seed(11),
        ),
        (
            "small-gaussian",
            ScenarioConfig::small()
                .with_num_tasks(6)
                .with_num_slots(32)
                .with_num_workers(400)
                .with_placement(TaskPlacement::Synthetic(SpatialDistribution::Gaussian))
                .with_seed(12),
        ),
        (
            "small-zipf",
            ScenarioConfig::small()
                .with_num_tasks(10)
                .with_num_slots(24)
                .with_num_workers(350)
                .with_placement(TaskPlacement::Synthetic(SpatialDistribution::zipf_default()))
                .with_seed(13),
        ),
    ]
}

fn prepare(config: &ScenarioConfig) -> (Scenario, WorkerIndex) {
    let scenario = config.build();
    let index = WorkerIndex::build(&scenario.workers, config.num_slots, &scenario.domain);
    (scenario, index)
}

#[test]
fn serial_builder_matches_msqm_serial() {
    for (label, preset) in presets() {
        let (scenario, index) = prepare(&preset);
        let cost = EuclideanCost::default();
        for budget in [20.0, 60.0] {
            let cfg = MultiTaskConfig::new(budget);
            let legacy = msqm_serial(&scenario.tasks, &index, &cost, &cfg);
            let built = SolverBuilder::new(budget).with_config(cfg).solve_indexed(
                &scenario.tasks,
                &index,
                &scenario.domain,
                &cost,
            );
            assert_eq!(legacy, built, "{label} b={budget}");
        }
    }
}

#[test]
fn min_quality_builder_matches_mmqm() {
    for (label, preset) in presets() {
        let (scenario, index) = prepare(&preset);
        let cost = EuclideanCost::default();
        let cfg = MultiTaskConfig::new(45.0);
        let legacy = mmqm(&scenario.tasks, &index, &cost, &cfg);
        let built = SolverBuilder::new(45.0)
            .with_config(cfg)
            .with_objective(SolveObjective::MinQuality)
            .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost);
        assert_eq!(legacy, built, "{label}");
    }
}

#[test]
fn task_parallel_builder_matches_both_masters() {
    for (label, preset) in presets() {
        let (scenario, index) = prepare(&preset);
        let cost = EuclideanCost::default();
        let cfg = MultiTaskConfig::new(50.0);
        for threads in [1, 4] {
            let barrier = msqm_task_parallel(&scenario.tasks, &index, &cost, &cfg, threads, true);
            let built = SolverBuilder::new(50.0)
                .with_config(cfg)
                .with_runtime(Runtime::TaskParallel)
                .with_threads(threads)
                .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost);
            assert_eq!(barrier.outcome, built, "{label} barrier t={threads}");

            let optimistic =
                msqm_task_parallel_optimistic(&scenario.tasks, &index, &cost, &cfg, threads, true);
            let built = SolverBuilder::new(50.0)
                .with_config(cfg)
                .with_runtime(Runtime::TaskParallel)
                .with_policy(tcsc_assign::GrantPolicy::Optimistic)
                .with_threads(threads)
                .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost);
            assert_eq!(optimistic.outcome, built, "{label} optimistic t={threads}");
        }
    }
}

#[test]
fn group_parallel_builder_matches_both_variants() {
    for (label, preset) in presets() {
        let (scenario, index) = prepare(&preset);
        let cost = EuclideanCost::default();
        let cfg = MultiTaskConfig::new(50.0);
        let legacy = msqm_group_parallel(&scenario.tasks, &index, &cost, &cfg, 3);
        let built = SolverBuilder::new(50.0)
            .with_config(cfg)
            .with_runtime(Runtime::GroupParallel)
            .with_threads(3)
            .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost);
        assert_eq!(legacy.outcome, built, "{label} plain");

        let mut cache = CandidateCache::new();
        let cached =
            msqm_group_parallel_cached(&scenario.tasks, &index, &cost, &cfg, 3, &mut cache);
        let built = SolverBuilder::new(50.0)
            .with_config(cfg)
            .with_runtime(Runtime::GroupParallel)
            .with_threads(3)
            .with_group_cache(true)
            .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost);
        assert_eq!(cached.outcome, built, "{label} cached");
    }
}

#[test]
fn spatiotemporal_builder_matches_sapprox() {
    for (label, preset) in presets() {
        let (scenario, index) = prepare(&preset);
        let cost = EuclideanCost::default();
        let cfg = MultiTaskConfig::new(40.0);
        for weights in [
            InterpolationWeights::temporal_only(),
            InterpolationWeights::paper_default(),
        ] {
            let legacy = sapprox(
                &scenario.tasks,
                &index,
                &cost,
                &scenario.domain,
                weights,
                SpatioTemporalObjective::Sum,
                &cfg,
            );
            let built = SolverBuilder::new(40.0)
                .with_config(cfg)
                .with_objective(SolveObjective::SpatioTemporal {
                    weights,
                    objective: SpatioTemporalObjective::Sum,
                })
                .solve_indexed(&scenario.tasks, &index, &scenario.domain, &cost);
            assert_eq!(legacy, built, "{label}");
        }
    }
}

#[test]
fn concurrent_builder_matches_the_serial_plan() {
    for (label, preset) in presets() {
        let (scenario, index) = prepare(&preset);
        let cost = EuclideanCost::default();
        let cfg = MultiTaskConfig::new(55.0);
        let serial = SolverBuilder::new(55.0).with_config(cfg).solve_indexed(
            &scenario.tasks,
            &index,
            &scenario.domain,
            &cost,
        );
        let concurrent = SolverBuilder::new(55.0)
            .with_config(cfg)
            .with_runtime(Runtime::Concurrent)
            .with_grid(ShardGridConfig::new(2, 2))
            .with_threads(4)
            .solve(
                &scenario.tasks,
                &scenario.workers,
                preset.num_slots,
                &scenario.domain,
                &cost,
            );
        assert_eq!(serial.assignment, concurrent.assignment, "{label}");
        assert_eq!(serial.conflicts, concurrent.conflicts, "{label}");
        assert_eq!(serial.executions, concurrent.executions, "{label}");
    }
}

#[test]
fn sim_builder_replays_the_serial_plan() {
    let (scenario, index) = prepare(&presets()[0].1);
    let cost = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(35.0);
    let serial = SolverBuilder::new(35.0).with_config(cfg).solve_indexed(
        &scenario.tasks,
        &index,
        &scenario.domain,
        &cost,
    );
    let sim = SolverBuilder::new(35.0)
        .with_config(cfg)
        .with_runtime(Runtime::Sim)
        .with_sim_nodes(3)
        .with_sim_latency(LatencyModel::Fixed(250))
        .solve(
            &scenario.tasks,
            &scenario.workers,
            presets()[0].1.num_slots,
            &scenario.domain,
            &cost,
        );
    assert_eq!(plan_hash(&serial.assignment), plan_hash(&sim.assignment));
    assert_eq!(serial.assignment, sim.assignment);
    assert_eq!(serial.executions, sim.executions);
}
