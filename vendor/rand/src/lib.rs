//! Hermetic stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The TCSC workspace builds in environments without network access, so the
//! small subset of the rand 0.8 API the workspace actually uses is vendored
//! here: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`thread_rng`].  The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic, fast and statistically solid
//! for workload generation, but **not** cryptographically secure and **not**
//! stream-compatible with the real `StdRng` (ChaCha12).  Reproducibility is
//! within this workspace only, which is all the experiments need.
//!
//! Swapping back to crates.io `rand` only requires editing the workspace
//! `[workspace.dependencies]` entry; no call site changes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: 32/64-bit uniform words.
pub trait RngCore {
    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that uniform values can be drawn from (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range {:?}", self);
        let sample = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against round-up to `end` on extreme spans.
        if sample < self.end {
            sample
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty f64 range {start}..={end}");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

/// Uniform integer in `[0, span)` by widening multiply (negligible bias for
/// the workload-generation span sizes used here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty integer range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty integer range {start}..={end}");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A lazily seeded per-call generator (stand-in for rand's `ThreadRng`).
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            let pid = std::process::id() as u64;
            Self {
                inner: StdRng::seed_from_u64(nanos ^ (pid << 32)),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a freshly (non-reproducibly) seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(
            (0..8).map(|_| a.gen_range(0..u64::MAX)).collect::<Vec<_>>(),
            (0..8).map(|_| c.gen_range(0..u64::MAX)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(1.5..3.25);
            assert!((1.5..3.25).contains(&f));
            let g = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&g));
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(5..=5usize);
            assert_eq!(v, 5);
            let w = rng.gen_range(-4..=9i64);
            assert!((-4..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn unit_interval_is_well_distributed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = (0..50_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn thread_rng_produces_values() {
        let mut rng = super::thread_rng();
        let x = rng.gen_range(0..100u32);
        assert!(x < 100);
    }
}
