//! Hermetic stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! bench harness.
//!
//! The TCSC workspace builds without network access, so the subset of the
//! criterion 0.5 API used by the `fig*` benches is vendored here:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] (with `sample_size` /
//! `measurement_time` knobs), [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm-up, then mean wall-clock time
//! over `sample_size` timed samples — and reports min/mean/max per benchmark.
//! There is no statistical analysis, plotting or saved baselines; swap the
//! workspace dependency back to crates.io `criterion` for those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A two-part benchmark identifier, e.g. `approx/200`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up run, untimed.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        for done in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if done + 1 < self.sample_size && Instant::now() > deadline {
                break;
            }
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- group: {name} --");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benches a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{id}"), self.sample_size, self.measurement_time, f);
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Caps the measurement wall-clock time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Benches a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is incremental).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{label:<40} time: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function that runs the given benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("test");
            group
                .sample_size(5)
                .measurement_time(Duration::from_millis(200));
            group.bench_function("counting", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // one warm-up + up to 5 samples
        assert!(runs >= 2, "bench closure ran {runs} times");
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("inputs");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("approx", 200).to_string(), "approx/200");
    }
}
